//! Synthetic single-threaded workloads for the Logic+Logic study.
//!
//! The paper drives its product performance simulator with over 650
//! proprietary traces spanning "SPECINT, SPECFP, hand written kernels,
//! multimedia, internet, productivity, server, and workstation
//! applications". This module substitutes parameterised uop-stream
//! generators, one per application class, with instruction mixes,
//! dependence distances, branch-outcome patterns and cache-hit profiles
//! chosen to be characteristic of each class.

use stacksim_rng::StdRng;

use crate::uop::{MemLevel, Uop, UopKind};

/// The application classes of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Integer-dominated, branchy (SPECINT-like).
    SpecInt,
    /// FP-dominated, loopy, long dependence chains (SPECFP-like).
    SpecFp,
    /// SIMD-heavy streaming kernels (multimedia).
    Multimedia,
    /// Pointer-chasing, cache-missing, store-heavy (server).
    Server,
    /// Mixed interactive integer code (productivity).
    Productivity,
    /// Branchy, short functions, moderate misses (internet).
    Internet,
    /// FP + integer mix with large data (workstation).
    Workstation,
    /// Hand-written math kernels: dense FP, high ILP.
    Kernels,
}

impl WorkloadClass {
    /// All classes, in a stable order.
    pub fn all() -> [WorkloadClass; 8] {
        use WorkloadClass::*;
        [
            SpecInt,
            SpecFp,
            Multimedia,
            Server,
            Productivity,
            Internet,
            Workstation,
            Kernels,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadClass::SpecInt => "specint",
            WorkloadClass::SpecFp => "specfp",
            WorkloadClass::Multimedia => "multimedia",
            WorkloadClass::Server => "server",
            WorkloadClass::Productivity => "productivity",
            WorkloadClass::Internet => "internet",
            WorkloadClass::Workstation => "workstation",
            WorkloadClass::Kernels => "kernels",
        }
    }

    /// The class's generation parameters.
    pub fn profile(&self) -> MixProfile {
        match self {
            WorkloadClass::SpecInt => MixProfile {
                fp: 0.02,
                simd: 0.01,
                load: 0.24,
                fp_load: 0.00,
                store: 0.11,
                branch: 0.17,
                branch_noise: 0.10,
                l2_rate: 0.04,
                mem_rate: 0.003,
                dep_mean: 3.0,
                chain: 0.35,
            },
            WorkloadClass::SpecFp => MixProfile {
                fp: 0.30,
                simd: 0.02,
                load: 0.14,
                fp_load: 0.16,
                store: 0.09,
                branch: 0.06,
                branch_noise: 0.02,
                l2_rate: 0.05,
                mem_rate: 0.006,
                dep_mean: 4.0,
                chain: 0.45,
            },
            WorkloadClass::Multimedia => MixProfile {
                fp: 0.04,
                simd: 0.34,
                load: 0.20,
                fp_load: 0.02,
                store: 0.12,
                branch: 0.08,
                branch_noise: 0.03,
                l2_rate: 0.03,
                mem_rate: 0.002,
                dep_mean: 5.0,
                chain: 0.25,
            },
            WorkloadClass::Server => MixProfile {
                fp: 0.01,
                simd: 0.00,
                load: 0.27,
                fp_load: 0.00,
                store: 0.16,
                branch: 0.16,
                branch_noise: 0.12,
                l2_rate: 0.08,
                mem_rate: 0.012,
                dep_mean: 2.5,
                chain: 0.45,
            },
            WorkloadClass::Productivity => MixProfile {
                fp: 0.02,
                simd: 0.03,
                load: 0.23,
                fp_load: 0.01,
                store: 0.13,
                branch: 0.15,
                branch_noise: 0.08,
                l2_rate: 0.04,
                mem_rate: 0.004,
                dep_mean: 3.0,
                chain: 0.35,
            },
            WorkloadClass::Internet => MixProfile {
                fp: 0.01,
                simd: 0.02,
                load: 0.24,
                fp_load: 0.00,
                store: 0.14,
                branch: 0.18,
                branch_noise: 0.10,
                l2_rate: 0.05,
                mem_rate: 0.005,
                dep_mean: 2.8,
                chain: 0.40,
            },
            WorkloadClass::Workstation => MixProfile {
                fp: 0.16,
                simd: 0.06,
                load: 0.18,
                fp_load: 0.08,
                store: 0.10,
                branch: 0.10,
                branch_noise: 0.05,
                l2_rate: 0.06,
                mem_rate: 0.007,
                dep_mean: 3.5,
                chain: 0.40,
            },
            WorkloadClass::Kernels => MixProfile {
                fp: 0.34,
                simd: 0.08,
                load: 0.12,
                fp_load: 0.14,
                store: 0.12,
                branch: 0.04,
                branch_noise: 0.01,
                l2_rate: 0.02,
                mem_rate: 0.002,
                dep_mean: 6.0,
                chain: 0.30,
            },
        }
    }

    /// Generates `n` uops of this class, deterministically in `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Uop> {
        generate(self.profile(), n, seed ^ (*self as u64) << 32)
    }
}

/// Instruction-mix parameters of one class. Fractions are of all uops; the
/// remainder are integer ALU ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixProfile {
    /// Scalar FP fraction.
    pub fp: f64,
    /// SIMD fraction.
    pub simd: f64,
    /// Integer load fraction.
    pub load: f64,
    /// FP load fraction.
    pub fp_load: f64,
    /// Store fraction.
    pub store: f64,
    /// Branch fraction.
    pub branch: f64,
    /// Fraction of branches with data-dependent (unpredictable) outcomes.
    pub branch_noise: f64,
    /// Probability a load misses to L2.
    pub l2_rate: f64,
    /// Probability a load misses to memory.
    pub mem_rate: f64,
    /// Mean dependence distance (geometric).
    pub dep_mean: f64,
    /// Probability a uop chains on the immediately previous uop's result
    /// (serial dataflow like reductions or pointer chasing).
    pub chain: f64,
}

fn generate(p: MixProfile, n: usize, seed: u64) -> Vec<Uop> {
    let mut rng = StdRng::seed_from_u64(seed);
    let geo = rand_distr_geometric(p.dep_mean);
    let mut out = Vec::with_capacity(n);
    // a small set of static branch sites with per-site behaviour
    let sites: Vec<(u64, BranchBehaviour)> = (0..24)
        .map(|i| {
            let ip = 0x40_0000 + i * 36;
            let r: f64 = rng.gen();
            // most static branches are loop back-edges or strongly biased;
            // `branch_noise` controls the share of data-dependent branches
            let b = if r < 0.45 {
                BranchBehaviour::Loop(rng.gen_range(8..160))
            } else if r < 0.45 + p.branch_noise {
                BranchBehaviour::Random
            } else {
                BranchBehaviour::Biased(rng.gen_range(0.97..0.999))
            };
            (ip, b)
        })
        .collect();
    let mut site_counts = vec![0u64; sites.len()];
    let mut ip = 0x40_0000u64;
    // store runs average 3 slots per draw; compensate the draw
    // probabilities so the realised fractions match the profile exactly
    let q_store = p.store / (3.0 - 2.0 * p.store);
    let m = 1.0 + 2.0 * q_store;
    // stores come in runs (structure copies, spills), pressuring the SQ
    let mut store_run: u32 = 0;
    // control flow walks the branch sites in a repeating order (a loop
    // nest), with occasional jumps — repeatable sequences are what make
    // global-history prediction work
    let mut site_pos = 0usize;

    for i in 0..n {
        let r: f64 = rng.gen();
        let kind = if store_run > 0 {
            store_run -= 1;
            UopKind::Store
        } else if r < p.branch * m {
            let s = if rng.gen_bool(0.05) {
                site_pos = rng.gen_range(0..sites.len());
                site_pos
            } else {
                site_pos = (site_pos + 1) % sites.len();
                site_pos
            };
            let (bip, behaviour) = sites[s];
            site_counts[s] += 1;
            let taken = match behaviour {
                BranchBehaviour::Loop(period) => !site_counts[s].is_multiple_of(u64::from(period)),
                BranchBehaviour::Biased(prob) => rng.gen_bool(prob),
                BranchBehaviour::Random => rng.gen_bool(0.5),
            };
            ip = bip;
            UopKind::Branch { taken }
        } else if r < (p.branch + p.fp) * m {
            UopKind::Fp
        } else if r < (p.branch + p.fp + p.simd) * m {
            UopKind::Simd
        } else if r < (p.branch + p.fp + p.simd + p.load) * m {
            UopKind::Load
        } else if r < (p.branch + p.fp + p.simd + p.load + p.fp_load) * m {
            UopKind::FpLoad
        } else if r < (p.branch + p.fp + p.simd + p.load + p.fp_load) * m + q_store {
            // a run of 3 on average keeps the overall store fraction at
            // `p.store` while making occupancy bursty
            store_run = rng.gen_range(1..=3);
            UopKind::Store
        } else {
            UopKind::Int
        };
        let mem_level = if kind.is_load() {
            let m: f64 = rng.gen();
            if m < p.mem_rate {
                MemLevel::Memory
            } else if m < p.mem_rate + p.l2_rate {
                MemLevel::L2
            } else {
                MemLevel::L1
            }
        } else {
            MemLevel::L1
        };
        let src = |rng: &mut StdRng, out: &[Uop], i: usize| -> Option<u32> {
            if i == 0 {
                return None;
            }
            let mut d = if rng.gen_bool(p.chain) { 1 } else { geo(rng) }.min(i as u32);
            // compilers hoist loads away from their consumers; when a
            // dependence lands on a load, usually re-draw a farther one
            // (FP loads stay tight: they feed FP chains inside loops)
            if out[i - d as usize].kind == UopKind::Load && rng.gen_bool(0.75) {
                d = (d + geo(rng) + 2).min(i as u32);
            }
            Some(d)
        };
        let src1 = src(&mut rng, &out, i);
        let src2 = if matches!(
            kind,
            UopKind::Int | UopKind::Fp | UopKind::Simd | UopKind::Store
        ) && rng.gen_bool(0.6)
        {
            src(&mut rng, &out, i)
        } else {
            None
        };
        if !kind.is_branch() {
            ip = ip.wrapping_add(4);
        }
        out.push(Uop {
            kind,
            ip,
            src1,
            src2,
            mem_level,
        });
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum BranchBehaviour {
    /// Taken except every `period`-th execution (loop back-edge).
    Loop(u32),
    /// Taken with a fixed probability.
    Biased(f64),
    /// Data-dependent, unpredictable.
    Random,
}

/// Geometric-ish distance sampler with the given mean (min 1).
fn rand_distr_geometric(mean: f64) -> impl Fn(&mut StdRng) -> u32 {
    let p = 1.0 / mean.max(1.0);
    move |rng: &mut StdRng| {
        let mut d = 1u32;
        while d < 64 && !rng.gen_bool(p) {
            d += 1;
        }
        d
    }
}

/// Convenience: a suite of `(class, uops)` pairs at a given length.
pub fn suite(n_per_class: usize, seed: u64) -> Vec<(WorkloadClass, Vec<Uop>)> {
    WorkloadClass::all()
        .iter()
        .map(|c| (*c, c.generate(n_per_class, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadClass::SpecInt.generate(1000, 7);
        let b = WorkloadClass::SpecInt.generate(1000, 7);
        let c = WorkloadClass::SpecInt.generate(1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mixes_approximate_profiles() {
        for class in WorkloadClass::all() {
            let uops = class.generate(40_000, 1);
            let p = class.profile();
            let frac = |pred: fn(&Uop) -> bool| {
                uops.iter().filter(|u| pred(u)).count() as f64 / uops.len() as f64
            };
            let branches = frac(|u| u.kind.is_branch());
            assert!(
                (branches - p.branch).abs() < 0.02,
                "{}: branch {branches} vs {}",
                class.name(),
                p.branch
            );
            let stores = frac(|u| u.kind.is_store());
            assert!((stores - p.store).abs() < 0.02, "{}: stores", class.name());
            let loads = frac(|u| u.kind.is_load());
            assert!(
                (loads - (p.load + p.fp_load)).abs() < 0.02,
                "{}: loads",
                class.name()
            );
        }
    }

    #[test]
    fn specfp_is_fp_heavy_and_specint_is_not() {
        let fp_frac = |c: WorkloadClass| {
            let u = c.generate(20_000, 3);
            u.iter().filter(|u| u.kind.is_fp()).count() as f64 / u.len() as f64
        };
        assert!(fp_frac(WorkloadClass::SpecFp) > 0.35);
        assert!(fp_frac(WorkloadClass::SpecInt) < 0.05);
    }

    #[test]
    fn sources_point_backwards_within_stream() {
        let uops = WorkloadClass::Server.generate(5000, 11);
        for (i, u) in uops.iter().enumerate() {
            for s in [u.src1, u.src2].into_iter().flatten() {
                assert!(s as usize <= i, "uop {i} source distance {s}");
                assert!(s >= 1);
            }
        }
    }

    #[test]
    fn suite_covers_all_classes() {
        let s = suite(100, 5);
        assert_eq!(s.len(), 8);
        for (_, uops) in s {
            assert_eq!(uops.len(), 100);
        }
    }
}
