//! Randomized property tests for the pipeline model: structural bounds
//! that must hold for *any* generated workload. Inputs are drawn from a
//! deterministic family of seeds so failures reproduce exactly.

use stacksim_ooo::{CoreConfig, Simulator, WireConfig, WirePath, WorkloadClass};
use stacksim_rng::StdRng;

fn any_class(rng: &mut StdRng) -> WorkloadClass {
    let all = WorkloadClass::all();
    all[rng.gen_range(0..all.len())]
}

/// IPC is bounded by rename width from above and positive from below, and
/// the stall accounting never exceeds total cycles.
#[test]
fn ipc_and_stalls_are_bounded() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let class = any_class(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let n = rng.gen_range(2_000usize..8_000);
        let uops = class.generate(n, seed);
        let s = Simulator::new(CoreConfig::planar()).run(&uops);
        let ipc = s.ipc();
        assert!(ipc > 0.0);
        assert!(ipc <= CoreConfig::planar().rename_width as f64 + 1e-9);
        assert!(s.redirect_stall_cycles <= s.cycles);
        assert!(s.rob_stall_cycles <= s.cycles);
        assert!(s.sq_stall_cycles <= s.cycles);
        assert!(s.mispredict_rate >= 0.0 && s.mispredict_rate <= 1.0);
    }
}

/// The folded machine never loses to planar, and single-path machines sit
/// between them, for any class and seed.
#[test]
fn wire_improvements_are_monotone() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let class = any_class(&mut rng);
        let seed = rng.gen_range(0u64..500);
        let uops = class.generate(6_000, seed);
        let planar = Simulator::new(CoreConfig::planar()).run(&uops).cycles;
        let folded = Simulator::new(CoreConfig::folded_3d()).run(&uops).cycles;
        assert!(folded <= planar, "folded {folded} vs planar {planar}");
        for path in [
            WirePath::FpLatency,
            WirePath::StoreLifetime,
            WirePath::DcacheRead,
        ] {
            let cfg = CoreConfig {
                wire: path.apply(WireConfig::planar()),
                ..CoreConfig::planar()
            };
            let single = Simulator::new(cfg).run(&uops).cycles;
            assert!(single <= planar, "{path}");
            assert!(single >= folded, "{path}");
        }
    }
}

/// The simulator is deterministic: identical inputs give identical cycle
/// counts and stall breakdowns.
#[test]
fn simulation_is_deterministic() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let class = any_class(&mut rng);
        let seed = rng.gen_range(0u64..500);
        let uops = class.generate(4_000, seed);
        let sim = Simulator::new(CoreConfig::planar());
        let a = sim.run(&uops);
        let b = sim.run(&uops);
        assert_eq!(a, b);
    }
}

/// A bigger store queue can only help.
#[test]
fn store_queue_capacity_is_monotone() {
    for seed in 0..16u64 {
        let uops = WorkloadClass::Server.generate(6_000, seed);
        let small = Simulator::new(CoreConfig {
            store_queue: 6,
            ..CoreConfig::planar()
        })
        .run(&uops)
        .cycles;
        let large = Simulator::new(CoreConfig {
            store_queue: 48,
            ..CoreConfig::planar()
        })
        .run(&uops)
        .cycles;
        assert!(large <= small, "large {large} vs small {small}");
    }
}
