//! Off-die bus power (§3: "Assuming a bus power consumption rate of
//! 20mW/Gb/s, 3D stacking of DRAM reduces bus power by 0.5W").

/// Bus energy cost in watts per gigabit-per-second of traffic.
pub const WATTS_PER_GBPS: f64 = 0.020;

/// Bus power in watts for a given off-die bandwidth in **gigabytes** per
/// second (decimal GB, as reported by the memory simulator).
///
/// # Panics
///
/// Panics if the bandwidth is negative.
pub fn bus_power_w(gb_per_sec: f64) -> f64 {
    assert!(gb_per_sec >= 0.0, "bandwidth must be non-negative");
    WATTS_PER_GBPS * gb_per_sec * 8.0
}

/// Power saved when bandwidth drops from `before` to `after` GB/s.
pub fn bus_power_saving_w(before_gbps: f64, after_gbps: f64) -> f64 {
    bus_power_w(before_gbps) - bus_power_w(after_gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_milliwatts_per_gbit() {
        // 1 GB/s = 8 Gb/s = 160 mW
        assert!((bus_power_w(1.0) - 0.16).abs() < 1e-12);
        assert_eq!(bus_power_w(0.0), 0.0);
    }

    #[test]
    fn papers_half_watt_example() {
        // a ~4 GB/s baseline cut by 3x saves roughly half a watt, the §3
        // figure ("reduces bus power by 0.5W")
        let saving = bus_power_saving_w(4.2, 4.2 / 3.0);
        assert!(saving > 0.4 && saving < 0.6, "saving {saving}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_panics() {
        let _ = bus_power_w(-1.0);
    }
}
