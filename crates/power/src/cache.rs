//! Cache-array power, per the Fig. 7 design points: "4MB of SRAM consume
//! 7W, 32MB of DRAM consume 3.1W, and 64MB of DRAM consume 6.2W"; the 8 MB
//! of stacked SRAM add 14 W.

/// Power of an on-die SRAM array, in watts per megabyte (from the 4 MB /
/// 7 W and +8 MB / +14 W points: 1.75 W/MB).
pub const SRAM_W_PER_MB: f64 = 1.75;

/// Power of the stacked 3D DRAM, in watts per megabyte (from the 32 MB /
/// 3.1 W point: ~0.097 W/MB — low because the die-to-die interconnect is
/// far cheaper than off-die I/O; its RC is about a third of a full via
/// stack).
pub const DRAM_W_PER_MB: f64 = 3.1 / 32.0;

/// SRAM array power for a capacity in MB.
///
/// # Panics
///
/// Panics if `mb` is negative.
pub fn sram_power_w(mb: f64) -> f64 {
    assert!(mb >= 0.0, "capacity must be non-negative");
    SRAM_W_PER_MB * mb
}

/// Stacked-DRAM array power for a capacity in MB.
///
/// # Panics
///
/// Panics if `mb` is negative.
pub fn dram_power_w(mb: f64) -> f64 {
    assert!(mb >= 0.0, "capacity must be non-negative");
    DRAM_W_PER_MB * mb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_design_points() {
        assert!((sram_power_w(4.0) - 7.0).abs() < 1e-9);
        assert!((sram_power_w(8.0) - 14.0).abs() < 1e-9);
        assert!((dram_power_w(32.0) - 3.1).abs() < 1e-9);
        assert!((dram_power_w(64.0) - 6.2).abs() < 1e-9);
    }

    #[test]
    fn dram_is_about_8x_denser_and_much_cooler_per_mb() {
        // "Typically well designed DRAM is about 8X denser than an SRAM"
        // and per-MB power is more than 10x lower
        let ratio = SRAM_W_PER_MB / DRAM_W_PER_MB;
        assert!(ratio > 10.0, "ratio {ratio}");
    }
}
