//! Energy-per-instruction accounting for the Logic+Logic fold (§4).
//!
//! The paper's 15% power reduction decomposes into: removed pipe stages are
//! "dominated by long global metal", halving repeaters and repeating
//! latches; the shared 3D clock grid has 50% less metal RC; and global wire
//! shortens overall. This module carries that decomposition so the ablation
//! benches can turn individual savings off.

/// A breakdown of a core's power into the components the 3D fold touches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Repeaters and repeating latches on global wires (W).
    pub repeaters: f64,
    /// Pipe-stage latches (W).
    pub latches: f64,
    /// Clock grid (W).
    pub clock: f64,
    /// Everything else: logic, arrays, leakage (W).
    pub logic: f64,
}

impl PowerBreakdown {
    /// The 147 W Pentium 4–class skew: wire/clock-heavy, as the paper's
    /// "wire can consume more than 30% of the power" observation implies.
    pub fn p4_147w() -> Self {
        PowerBreakdown {
            repeaters: 18.0,
            latches: 16.0,
            clock: 26.0,
            logic: 87.0,
        }
    }

    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.repeaters + self.latches + self.clock + self.logic
    }

    /// Fraction of power in wire-related components (repeaters + clock).
    pub fn wire_fraction(&self) -> f64 {
        (self.repeaters + self.clock) / self.total()
    }

    /// Applies the 3D fold's savings: repeaters and repeating latches are
    /// halved ("the number of repeaters and repeating latches ... is
    /// reduced by 50%"), the clock grid loses half its metal RC, and a
    /// quarter of the pipe-stage latches disappear with the ~25% of stages.
    pub fn fold_3d(&self) -> PowerBreakdown {
        PowerBreakdown {
            repeaters: self.repeaters * 0.5,
            latches: self.latches * 0.75,
            clock: self.clock * 0.75,
            logic: self.logic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_breakdown_totals_147() {
        assert!((PowerBreakdown::p4_147w().total() - 147.0).abs() < 1e-9);
    }

    #[test]
    fn wire_power_is_about_30_percent() {
        let b = PowerBreakdown::p4_147w();
        let f = b.wire_fraction();
        assert!(f > 0.25 && f < 0.35, "wire fraction {f}");
    }

    #[test]
    fn fold_saves_about_15_percent() {
        let b = PowerBreakdown::p4_147w();
        let folded = b.fold_3d();
        let saving = 1.0 - folded.total() / b.total();
        assert!((saving - 0.15).abs() < 0.02, "saving {saving}");
    }

    #[test]
    fn fold_never_touches_logic_power() {
        let b = PowerBreakdown::p4_147w();
        assert_eq!(b.fold_3d().logic, b.logic);
    }
}
