//! Power models for the die-stacking studies.
//!
//! Three pieces of *Die Stacking (3D) Microarchitecture* (Black et al.,
//! MICRO 2006) are power bookkeeping rather than simulation, and live here:
//!
//! * [`bus`] — the off-die bus at 20 mW/Gb/s (§3's 0.5 W saving);
//! * [`cache`] — SRAM vs stacked-DRAM array power (Fig. 7's 7 W / 14 W /
//!   3.1 W / 6.2 W design points);
//! * [`scaling`] — Table 5's voltage/frequency scaling of the Logic+Logic
//!   design (+0.82% perf per +1% f, f:Vcc 1:1, `V²f` power);
//! * [`epi`] — the decomposition behind the fold's 15% power saving
//!   (repeaters, repeating latches, clock grid).
//!
//! # Example
//!
//! ```
//! use stacksim_power::scaling::ScalingModel;
//!
//! let m = ScalingModel::fig11_3d();
//! let same_perf = m.scale_to_perf(100.0);
//! // giving back the 15% performance gain more than halves power
//! assert!(m.power(same_perf) < 0.5 * 147.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cache;
pub mod epi;
pub mod scaling;

pub use bus::bus_power_w;
pub use cache::{dram_power_w, sram_power_w};
pub use epi::PowerBreakdown;
pub use scaling::{OperatingPoint, ScalingModel, PERF_PER_FREQ};
