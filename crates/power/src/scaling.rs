//! Voltage/frequency scaling (Table 5 of the paper).
//!
//! The paper's measured relations:
//!
//! * performance scales **additively**: +0.82% performance per +1%
//!   frequency, in percentage points of the planar baseline
//!   (Table 5's "0.82% performance for 1% frequency");
//! * frequency tracks Vcc 1:1 within the considered range;
//! * dynamic power scales as `V² · f`, i.e. `s³` when Vcc and frequency
//!   scale together by `s`.

/// Performance percentage points gained per frequency percentage point.
pub const PERF_PER_FREQ: f64 = 0.82;

/// One operating point of the scaled 3D design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage relative to nominal.
    pub vcc: f64,
    /// Frequency relative to nominal.
    pub freq: f64,
}

impl OperatingPoint {
    /// The nominal point (Vcc = 1, f = 1).
    pub fn nominal() -> Self {
        OperatingPoint {
            vcc: 1.0,
            freq: 1.0,
        }
    }

    /// Vcc and frequency scaled together by `s` (the 1:1 relation).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not positive.
    pub fn scaled_together(s: f64) -> Self {
        assert!(s > 0.0, "scale must be positive");
        OperatingPoint { vcc: s, freq: s }
    }

    /// Dynamic-power factor `V² · f` relative to nominal.
    pub fn power_factor(&self) -> f64 {
        self.vcc * self.vcc * self.freq
    }
}

/// The Logic+Logic scaling model: a design with `base_power` watts and
/// `base_perf` performance (in % of the planar baseline) at the nominal
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingModel {
    /// Power at Vcc = 1, f = 1 (e.g. 125 W for the 3D floorplan).
    pub base_power: f64,
    /// Performance at f = 1, in percent of the planar baseline (115 for
    /// the 3D floorplan's +15%).
    pub base_perf: f64,
}

impl ScalingModel {
    /// The paper's 3D floorplan: 125 W (15% below the 147 W planar) at
    /// +15% performance.
    pub fn fig11_3d() -> Self {
        ScalingModel {
            base_power: 147.0 * 0.85,
            base_perf: 115.0,
        }
    }

    /// The planar baseline: 147 W at 100%.
    pub fn fig11_planar() -> Self {
        ScalingModel {
            base_power: 147.0,
            base_perf: 100.0,
        }
    }

    /// Power in watts at an operating point.
    pub fn power(&self, p: OperatingPoint) -> f64 {
        self.base_power * p.power_factor()
    }

    /// Performance (% of planar baseline) at an operating point, using the
    /// additive +0.82 points per +1% frequency relation.
    pub fn perf(&self, p: OperatingPoint) -> f64 {
        self.base_perf + PERF_PER_FREQ * (p.freq - 1.0) * 100.0
    }

    /// Frequency-only scaling (Vcc pinned at 1) reaching a power target —
    /// Table 5's "Same Pwr" row scales frequency up at nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive.
    pub fn scale_freq_to_power(&self, target_w: f64) -> OperatingPoint {
        assert!(target_w > 0.0, "target power must be positive");
        OperatingPoint {
            vcc: 1.0,
            freq: target_w / self.base_power,
        }
    }

    /// Joint Vcc/frequency scaling (1:1) reaching a power target:
    /// `base · s³ = target`.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive.
    pub fn scale_to_power(&self, target_w: f64) -> OperatingPoint {
        assert!(target_w > 0.0, "target power must be positive");
        OperatingPoint::scaled_together((target_w / self.base_power).cbrt())
    }

    /// Joint Vcc/frequency scaling reaching a performance target (percent
    /// of the planar baseline).
    pub fn scale_to_perf(&self, target_pct: f64) -> OperatingPoint {
        let freq = 1.0 + (target_pct - self.base_perf) / (PERF_PER_FREQ * 100.0);
        OperatingPoint::scaled_together(freq)
    }

    /// Joint Vcc/frequency scaling until `temperature(power)` reaches
    /// `target_c`, by bisection on the scale factor. `temperature` must be
    /// monotonically increasing in power (thermal solves are).
    pub fn scale_to_temperature(
        &self,
        target_c: f64,
        mut temperature: impl FnMut(f64) -> f64,
    ) -> OperatingPoint {
        let (mut lo, mut hi) = (0.3f64, 1.5f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let t = temperature(self.power(OperatingPoint::scaled_together(mid)));
            if t > target_c {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        OperatingPoint::scaled_together(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_is_identity() {
        let p = OperatingPoint::nominal();
        assert_eq!(p.power_factor(), 1.0);
        let m = ScalingModel::fig11_3d();
        assert!((m.power(p) - 124.95).abs() < 1e-9);
        assert_eq!(m.perf(p), 115.0);
    }

    #[test]
    fn same_power_row_matches_table5() {
        // "Same Pwr": 147 W, Vcc 1, freq 1.18, perf 129%
        let m = ScalingModel::fig11_3d();
        let p = m.scale_freq_to_power(147.0);
        assert!((p.freq - 1.176).abs() < 0.01, "freq {}", p.freq);
        assert_eq!(p.vcc, 1.0);
        let perf = m.perf(p);
        assert!((perf - 129.0).abs() < 1.5, "perf {perf}");
    }

    #[test]
    fn same_perf_row_matches_table5() {
        // "Same Perf.": perf 100%, Vcc/freq ~0.82, power ~68 W
        let m = ScalingModel::fig11_3d();
        let p = m.scale_to_perf(100.0);
        assert!((p.freq - 0.817).abs() < 0.01, "freq {}", p.freq);
        let w = m.power(p);
        assert!((w - 68.2).abs() < 1.5, "power {w}");
    }

    #[test]
    fn same_temp_row_with_linear_thermal_model() {
        // with the paper's Fig. 11 numbers as a linear thermal model
        // (ΔT ∝ power), the same-temperature point lands near Vcc 0.92–0.94
        // and two-thirds power, as in Table 5
        let m = ScalingModel::fig11_3d();
        let r_3d = (112.5 - 40.0) / 125.0;
        let p = m.scale_to_temperature(99.0, |w| 40.0 + r_3d * w);
        assert!(p.vcc > 0.9 && p.vcc < 0.95, "vcc {}", p.vcc);
        let w = m.power(p);
        assert!(w > 92.0 && w < 105.0, "power {w}");
        let perf = m.perf(p);
        assert!(perf > 106.0 && perf < 111.0, "perf {perf}");
    }

    #[test]
    fn cubic_power_law() {
        let m = ScalingModel::fig11_3d();
        let p = OperatingPoint::scaled_together(0.5);
        assert!((m.power(p) - 124.95 * 0.125).abs() < 1e-9);
    }

    #[test]
    fn scale_to_power_inverts_power() {
        let m = ScalingModel::fig11_planar();
        let p = m.scale_to_power(73.5);
        assert!((m.power(p) - 73.5).abs() < 1e-9);
        assert!((p.vcc - 0.7937).abs() < 1e-3);
    }
}
