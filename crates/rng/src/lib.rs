//! Small, dependency-free, deterministic pseudo-random number generator.
//!
//! The synthetic workload generators only need a seedable stream of
//! uniform integers, floats and biased coin flips. This crate provides a
//! xoshiro256\*\* generator (Blackman & Vigna) seeded through SplitMix64,
//! with an API surface mirroring the subset of `rand` the workspace uses
//! (`seed_from_u64`, `gen`, `gen_bool`, `gen_range`), so the simulator
//! builds without any external crates and every stream is reproducible
//! across platforms and releases.
//!
//! Streams are *stable*: changing the numbers a given seed produces is a
//! breaking change, because trace generation (and therefore every figure
//! artefact digest) depends on them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// A seedable xoshiro256\*\* generator.
///
/// Named `StdRng` so call sites read identically to the `rand` crate's
/// (`StdRng::seed_from_u64(seed)`), but the stream is this crate's own and
/// does not match `rand`'s ChaCha-based generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        StdRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample of `T`'s standard distribution (currently `f64` in
    /// `[0, 1)`, `u64`, `u32` and `bool`).
    pub fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// A uniform sample from `range` (half-open or inclusive, integer or
    /// `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` (widening-multiply reduction).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Types with a canonical "standard" distribution for [`StdRng::gen`].
pub trait Standard {
    /// Draws one standard sample.
    fn standard(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut StdRng) -> Self {
        rng.gen_f64()
    }
}

impl Standard for u64 {
    fn standard(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // the only such range is the full u64/i64 domain
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, i64, u32, i32, usize, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_pinned() {
        // trace digests depend on this stream; a change here invalidates
        // every memoized artifact
        let mut r = StdRng::seed_from_u64(0x3d_d1e5);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                15550981622579639779,
                738477014146032612,
                11020348540609385265,
                12216111314866745554
            ]
        );
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a: i64 = r.gen_range(-1..=1);
            assert!((-1..=1).contains(&a));
            let b: u64 = r.gen_range(0..17);
            assert!(b < 17);
            let c: u32 = r.gen_range(8..160);
            assert!((8..160).contains(&c));
            let d: f64 = r.gen_range(0.97..0.999);
            assert!((0.97..0.999).contains(&d));
            let e: usize = r.gen_range(0..5);
            assert!(e < 5);
            let f: u32 = r.gen_range(1..=3);
            assert!((1..=3).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_probability() {
        let _ = StdRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _: u64 = StdRng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn all_ints_reachable_in_small_range() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-1..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
