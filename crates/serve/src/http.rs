//! A minimal, dependency-free HTTP/1.1 subset: enough to parse the
//! daemon's request shapes (method + path + optional JSON body) and to
//! write plain responses. Not a general web server — requests are
//! size-capped, connections are close-after-response, and anything
//! outside the subset is rejected with a 4xx.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stacksim_core::harness::resilience::{SITE_SERVE_READ, SITE_SERVE_WRITE};
use stacksim_faults::Fault;

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Longest accepted request body, bytes.
const MAX_BODY: usize = 256 * 1024;
/// Default per-connection socket timeout (see
/// [`ServeOptions::io_timeout`](crate::ServeOptions)).
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, query string included (e.g. `/v1/x?wait=1`).
    pub target: String,
    /// The body, when a `Content-Length` was present.
    pub body: String,
}

impl Request {
    /// The target's path without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the query string contains `key=1` or a bare `key`.
    pub fn query_flag(&self, key: &str) -> bool {
        let Some(query) = self.target.split_once('?').map(|(_, q)| q) else {
            return false;
        };
        query
            .split('&')
            .any(|kv| kv == key || kv == format!("{key}=1") || kv == format!("{key}=true"))
    }

    /// The value of `key=value` in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let query = self.target.split_once('?').map(|(_, q)| q)?;
        query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed; [`reject`] maps this to a 4xx.
#[derive(Debug)]
pub enum ParseError {
    /// Socket error or the peer hung up mid-request.
    Io(std::io::Error),
    /// The bytes were not the HTTP subset this server speaks.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o: {e}"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge => write!(f, "request too large"),
        }
    }
}

/// Reads one request from the stream, with two layered timeouts: a
/// per-read socket timeout (a silent peer blocks at most one `timeout`)
/// and an overall deadline of the same budget for the *whole* request
/// (a drip-feeding slowloris peer cannot reset the clock byte by byte —
/// the connection is shed once the total read time exceeds `timeout`).
///
/// # Errors
///
/// [`ParseError`] on socket failure or timeout, malformed framing, or a
/// request exceeding the size caps.
pub fn read_request(stream: &mut TcpStream, timeout: Duration) -> Result<Request, ParseError> {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    if stacksim_faults::armed() {
        match stacksim_faults::check(SITE_SERVE_READ, "conn") {
            Some(Fault::IoTransient) => {
                return Err(ParseError::Io(std::io::Error::new(
                    ErrorKind::ConnectionReset,
                    "injected read fault",
                )));
            }
            Some(Fault::Truncate) => {
                return Err(ParseError::Malformed("connection closed mid-head"));
            }
            Some(Fault::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
    }
    parse_request(stream, Some(Instant::now() + timeout))
}

/// Parses one request from any byte source — the transport-free core of
/// [`read_request`], directly unit-testable against in-memory bytes
/// (pass `None` for the deadline).
///
/// Framing rules beyond the obvious: at most one `Content-Length`
/// header is accepted (duplicates are rejected even when they agree —
/// request-smuggling shapes are not worth disambiguating), and a
/// declared length over [`MAX_BODY`] is rejected *before* any body byte
/// is read, so an oversized upload costs the server nothing.
///
/// # Errors
///
/// [`ParseError`] on read failure, malformed framing, or a request
/// exceeding the size caps.
fn parse_request<R: Read>(
    stream: &mut R,
    deadline: Option<Instant>,
) -> Result<Request, ParseError> {
    let overdue = || {
        ParseError::Io(std::io::Error::new(
            ErrorKind::TimedOut,
            "request read exceeded its deadline",
        ))
    };
    // read until the blank line separating head from body
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(overdue());
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(ParseError::Malformed("connection closed mid-head")),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("request line has no target"))?
        .to_string();

    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                if content_length.is_some() {
                    return Err(ParseError::Malformed("duplicate content-length"));
                }
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| ParseError::Malformed("bad content-length"))?,
                );
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }

    // body bytes already buffered past the head, then the remainder
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(overdue());
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(ParseError::Malformed("connection closed mid-body")),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        target,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and flushes. Connections are close-after-response,
/// so this is the terminal act on the stream.
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    respond_with(stream, status, content_type, &[], body);
}

/// [`respond`] with extra response headers (e.g. `Retry-After` on a
/// load-shedding `503`/`429`).
pub fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");

    let mut truncate_body = false;
    if stacksim_faults::armed() {
        match stacksim_faults::check(SITE_SERVE_WRITE, &status.to_string()) {
            // the peer sees a connection reset before any byte arrives
            Some(Fault::IoTransient) => return,
            Some(Fault::Truncate) => truncate_body = true,
            Some(Fault::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
    }

    // the peer may already be gone; a failed write only affects them
    let _ = stream.write_all(head.as_bytes());
    let payload = if truncate_body {
        &body.as_bytes()[..body.len() / 2]
    } else {
        body.as_bytes()
    };
    let _ = stream.write_all(payload);
    let _ = stream.flush();
}

/// Maps a parse failure to its 4xx response.
pub fn reject(stream: &mut TcpStream, err: &ParseError) {
    let (status, detail) = match err {
        ParseError::TooLarge => (413, "request too large".to_string()),
        other => (400, other.to_string()),
    };
    respond(
        stream,
        status,
        "application/json",
        &format!("{{\"error\":{:?}}}\n", detail),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        parse_request(&mut Cursor::new(raw.as_bytes().to_vec()), None)
    }

    #[test]
    fn well_formed_request_round_trips() {
        let r = parse("POST /v1/explore HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\":1}\r\n")
            .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path(), "/v1/explore");
        assert_eq!(r.body, "{\"a\":1}\r\n");
        // no content-length means an empty body
        let r = parse("GET /healthz HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(r.body, "");
    }

    /// Regression: a second `Content-Length` used to silently overwrite
    /// the first (last-one-wins), the classic request-smuggling shape.
    #[test]
    fn duplicate_content_length_is_rejected() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        assert!(
            matches!(parse(raw), Err(ParseError::Malformed(m)) if m.contains("duplicate")),
            "duplicate headers are rejected even when they agree"
        );
    }

    /// Regression: conflicting lengths used to take the *last* value, so
    /// a large declared body could sneak under the cap check.
    #[test]
    fn conflicting_content_length_is_rejected() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 999999\r\nContent-Length: 4\r\n\r\nbody";
        assert!(matches!(
            parse(raw),
            Err(ParseError::Malformed("duplicate content-length"))
        ));
    }

    /// An over-cap declared length is rejected before any body byte is
    /// read: the request below carries no body at all, so reaching the
    /// body loop would fail with "closed mid-body", not `TooLarge`.
    #[test]
    fn oversized_content_length_is_rejected_before_the_body() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(ParseError::TooLarge)));
    }

    #[test]
    fn unparseable_content_length_is_rejected() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: over9000\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(ParseError::Malformed("bad content-length"))
        ));
        // negative lengths are not lengths
        let raw = "POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n";
        assert!(matches!(parse(raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        assert!(matches!(
            parse("\r\n\r\n"),
            Err(ParseError::Malformed("empty request line"))
        ));
        assert!(matches!(
            parse("GET\r\n\r\n"),
            Err(ParseError::Malformed("request line has no target"))
        ));
        // EOF before the head terminator
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\n"),
            Err(ParseError::Malformed("connection closed mid-head"))
        ));
    }

    #[test]
    fn query_flags_parse() {
        let r = Request {
            method: "GET".into(),
            target: "/v1/experiments/3?wait=1&x=2".into(),
            body: String::new(),
        };
        assert_eq!(r.path(), "/v1/experiments/3");
        assert!(r.query_flag("wait"));
        assert!(!r.query_flag("nope"));
        let bare = Request {
            method: "GET".into(),
            target: "/x?wait".into(),
            body: String::new(),
        };
        assert!(bare.query_flag("wait"));
    }

    #[test]
    fn query_params_parse() {
        let r = Request {
            method: "GET".into(),
            target: "/v1/experiments/3?wait=1&timeout_ms=250".into(),
            body: String::new(),
        };
        assert_eq!(r.query_param("timeout_ms"), Some("250"));
        assert_eq!(r.query_param("wait"), Some("1"));
        assert_eq!(r.query_param("nope"), None);
        let bare = Request {
            method: "GET".into(),
            target: "/x".into(),
            body: String::new(),
        };
        assert_eq!(bare.query_param("timeout_ms"), None);
    }

    /// An exceeded overall deadline is an I/O-class rejection even when
    /// the source keeps producing bytes — the slowloris defence.
    #[test]
    fn an_expired_deadline_sheds_the_request() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\n";
        let already_past = Instant::now() - Duration::from_millis(1);
        let err = parse_request(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            Some(already_past),
        )
        .expect_err("deadline in the past must shed");
        assert!(matches!(err, ParseError::Io(_)), "{err}");
    }
}
