//! # stacksim-serve
//!
//! The `stacksim serve` daemon: a thin HTTP/JSON layer over the
//! embeddable [`Sim`] session API (`stacksim_core::harness`). The server
//! owns one long-lived `Sim` — one warm memo cache, one registry, one
//! resilience policy — and translates requests onto it; everything
//! interesting (dedup, batching, memoization, fault opt-in) happens in
//! the session, so embedded and served callers behave identically and
//! artifacts are bit-identical across both paths.
//!
//! ## Endpoints
//!
//! | Method & path | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness: `{"status":"ok"}` |
//! | `GET /metrics` | the `stacksim-obs/1` metrics snapshot |
//! | `POST /v1/experiments` | submit; body `{"experiment":"fig3", ...}` |
//! | `GET /v1/experiments/<id>` | status + report; `?wait=1` blocks until done |
//! | `GET /v1/experiments/<id>/artifact` | the artifact's canonical JSON, verbatim |
//! | `POST /v1/explore` | synchronous design-space search; returns the frontier artifact |
//!
//! Submission bodies accept the same parameter overrides as
//! [`ExperimentRequest`]: `seed`, `scale` (`"test"`/`"paper"`),
//! `threads`, `chunk`, `solver_threads`, and `faults` (opt this request
//! into the server's armed fault plan). Identical in-flight submissions
//! deduplicate onto one execution and return the same `id`.
//!
//! `POST /v1/explore` accepts `{"spec": {..}, "mode": "grid", "budget":
//! N, "seed": N}` (every field optional) and runs the search in a
//! short-lived session sharing the server's memo cache, parameters and
//! job count — so repeated or overlapping explorations are served from
//! the same cache entries as everything else. The response is the
//! canonical `stacksim-explore/1` artifact.
//!
//! The accept loop runs on the caller's thread ([`Server::run`]) with a
//! small worker pool for connections, and drains gracefully: when the
//! shutdown flag flips, the listener stops accepting, in-flight
//! connections finish, and the session completes everything already
//! submitted before `run` returns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use stacksim_core::harness::json::Json;
use stacksim_core::harness::{
    ExperimentRequest, MemoCache, RequestHandle, RequestStatus, Resilience, Sim,
};
use stacksim_explore::{ExploreConfig, ExploreError, SearchMode, SpaceSpec};
use stacksim_faults::FaultPlan;
use stacksim_workloads::{Scale, WorkloadParams};

use http::{read_request, reject, respond, Request};

/// How the daemon is configured; see field docs. `Default` gives a
/// loopback server at paper scale with a disabled cache.
#[derive(Debug)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` picks a free one
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Connection worker threads.
    pub pool: usize,
    /// Base workload parameters requests resolve overrides against.
    pub params: WorkloadParams,
    /// Worker threads per experiment batch; `0` means one per CPU.
    pub jobs: usize,
    /// The shared memo cache.
    pub cache: MemoCache,
    /// The failure-handling policy.
    pub resilience: Resilience,
    /// The fault plan requests may opt into with `"faults": true`.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            pool: 4,
            params: WorkloadParams::paper(),
            jobs: 0,
            cache: MemoCache::disabled(),
            resilience: Resilience::default(),
            fault_plan: None,
        }
    }
}

/// Requests the daemon has accepted, by id, shared across connection
/// workers. A `BTreeMap` keeps iteration order deterministic.
type RequestMap = Arc<Mutex<BTreeMap<u64, RequestHandle>>>;

/// What `POST /v1/explore` builds its short-lived sessions from: the
/// server's own cache, base parameters and job count, so explorations
/// hit the same memo entries as every other request.
#[derive(Debug, Clone)]
struct ExploreEnv {
    params: WorkloadParams,
    jobs: usize,
    cache: MemoCache,
}

/// A bound (but not yet serving) daemon. Call [`Server::run`] to serve.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    sim: Arc<Sim>,
    requests: RequestMap,
    pool: usize,
    explore_env: Arc<ExploreEnv>,
}

impl Server {
    /// Binds the listen socket, builds the [`Sim`] session, and enables
    /// the process metrics registry (the `/metrics` source).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(options: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        stacksim_obs::enable();
        let explore_env = Arc::new(ExploreEnv {
            params: options.params,
            jobs: options.jobs,
            cache: options.cache.clone(),
        });
        let sim = Sim::builder()
            .params(options.params)
            .jobs(options.jobs)
            .cache(options.cache)
            .resilience(options.resilience)
            .fault_plan(options.fault_plan)
            .build();
        Ok(Server {
            listener,
            sim: Arc::new(sim),
            requests: Arc::new(Mutex::new(BTreeMap::new())),
            pool: options.pool.clamp(1, 64),
            explore_env,
        })
    }

    /// The bound address (the real port when `addr` asked for `:0`).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the socket has no local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying session, for embedding tests and in-process
    /// clients.
    pub fn sim(&self) -> &Arc<Sim> {
        &self.sim
    }

    /// Serves until `shutdown` flips to `true`, then drains: the
    /// listener stops accepting, connection workers finish, and every
    /// experiment already submitted runs to completion.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on a non-transient accept failure.
    pub fn run(self, shutdown: &AtomicBool) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.pool);
        for i in 0..self.pool {
            let rx = rx.clone();
            let sim = self.sim.clone();
            let requests = self.requests.clone();
            let explore_env = self.explore_env.clone();
            let worker = std::thread::Builder::new()
                .name(format!("serve-conn-{i}"))
                .spawn(move || loop {
                    let next = {
                        let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                        guard.recv()
                    };
                    match next {
                        Ok(mut stream) => {
                            handle_connection(&mut stream, &sim, &requests, &explore_env)
                        }
                        Err(_) => return, // channel closed: drain complete
                    }
                });
            if let Ok(handle) = worker {
                workers.push(handle);
            }
        }

        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(stream).is_err() {
                        break; // every worker died; nothing can serve
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                // a signal interrupting accept re-checks the flag
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // graceful drain: close the funnel, finish connections, then let
        // the session complete everything already submitted
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        self.sim.shutdown();
        Ok(())
    }
}

/// Routes one connection's request and writes its response.
fn handle_connection(
    stream: &mut TcpStream,
    sim: &Sim,
    requests: &RequestMap,
    explore_env: &ExploreEnv,
) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            reject(stream, &e);
            return;
        }
    };
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => respond(stream, 200, "application/json", "{\"status\":\"ok\"}\n"),
        ("GET", "/metrics") => {
            let snapshot = stacksim_obs::registry().snapshot().encode();
            respond(stream, 200, "application/json", &snapshot);
        }
        ("POST", "/v1/experiments") => submit(stream, sim, requests, &request),
        ("POST", "/v1/explore") => explore(stream, explore_env, &request),
        ("GET", path) if path.starts_with("/v1/experiments/") => {
            let rest = &path["/v1/experiments/".len()..];
            if let Some(id_text) = rest.strip_suffix("/artifact") {
                artifact(stream, requests, id_text);
            } else {
                status(stream, requests, rest, request.query_flag("wait"));
            }
        }
        ("GET" | "POST", _) => error_response(stream, 404, "no such endpoint"),
        _ => error_response(stream, 405, "method not allowed"),
    }
}

/// `POST /v1/experiments`: parse the body, submit, answer with the
/// request's id and current status. Deduplicated submissions answer with
/// the existing id.
fn submit(stream: &mut TcpStream, sim: &Sim, requests: &RequestMap, request: &Request) {
    let experiment_request = match parse_submission(&request.body) {
        Ok(r) => r,
        Err(detail) => {
            error_response(stream, 400, &detail);
            return;
        }
    };
    let handle = match sim.submit(&experiment_request) {
        Ok(h) => h,
        Err(e) => {
            let code = match e.kind() {
                "unknown-experiment" => 404,
                _ => 400,
            };
            error_response(stream, code, &e.to_string());
            return;
        }
    };
    requests
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(handle.id(), handle.clone());
    let body = Json::obj(vec![
        ("id", Json::Num(handle.id() as f64)),
        ("experiment", Json::Str(handle.name().to_string())),
        ("digest", Json::Str(handle.digest().to_string())),
        ("status", Json::Str(handle.status().label().to_string())),
    ]);
    respond(stream, 200, "application/json", &body.encode());
}

/// `POST /v1/explore`: run one synchronous design-space search in a
/// short-lived session sharing the server's cache, parameters and job
/// count, and answer with the canonical `stacksim-explore/1` artifact.
fn explore(stream: &mut TcpStream, env: &ExploreEnv, request: &Request) {
    let cfg = match parse_explore(&request.body) {
        Ok(cfg) => cfg,
        Err(detail) => {
            error_response(stream, 400, &detail);
            return;
        }
    };
    match stacksim_explore::run_exploration(&cfg, env.params, env.jobs, env.cache.clone()) {
        Ok(outcome) => respond(stream, 200, "application/json", &outcome.artifact_json),
        Err(e @ ExploreError::Spec(_)) => error_response(stream, 400, &e.to_string()),
        Err(e) => error_response(stream, 500, &e.to_string()),
    }
}

/// Decodes an explore body (`spec`, `mode`, `budget`, `seed`, each
/// optional) into an [`ExploreConfig`].
fn parse_explore(body: &str) -> Result<ExploreConfig, String> {
    let mut cfg = ExploreConfig::grid(SpaceSpec::default_space());
    if body.trim().is_empty() {
        return Ok(cfg);
    }
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    if let Some(spec) = doc.get("spec") {
        cfg.spec = SpaceSpec::parse(&spec.encode())?;
    }
    if let Some(v) = doc.get("mode") {
        cfg.mode = v
            .as_str()
            .and_then(SearchMode::parse)
            .ok_or("'mode' must be \"grid\", \"random\" or \"evolve\"")?;
    }
    if let Some(v) = doc.get("budget") {
        cfg.budget = v.as_u64().ok_or("'budget' must be an unsigned integer")? as usize;
    }
    if let Some(v) = doc.get("seed") {
        cfg.seed = v.as_u64().ok_or("'seed' must be an unsigned integer")?;
    }
    Ok(cfg)
}

/// Decodes a submission body into an [`ExperimentRequest`].
fn parse_submission(body: &str) -> Result<ExperimentRequest, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let name = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("body needs a string 'experiment' field")?;
    let mut req = ExperimentRequest::new(name);
    if let Some(v) = doc.get("seed") {
        req = req.seed(v.as_u64().ok_or("'seed' must be an unsigned integer")?);
    }
    if let Some(v) = doc.get("scale") {
        req = req.scale(match v.as_str() {
            Some("test") => Scale::Test,
            Some("paper") => Scale::Paper,
            _ => return Err("'scale' must be \"test\" or \"paper\"".to_string()),
        });
    }
    let usize_field = |v: &Json, what: &str| -> Result<usize, String> {
        v.as_u64()
            .map(|n| n as usize)
            .ok_or(format!("'{what}' must be an unsigned integer"))
    };
    if let Some(v) = doc.get("threads") {
        req = req.threads(usize_field(v, "threads")?);
    }
    if let Some(v) = doc.get("chunk") {
        req = req.chunk(usize_field(v, "chunk")?);
    }
    if let Some(v) = doc.get("solver_threads") {
        req = req.solver_threads(usize_field(v, "solver_threads")?);
    }
    if let Some(v) = doc.get("faults") {
        req = req.faults(v.as_bool().ok_or("'faults' must be a boolean")?);
    }
    Ok(req)
}

/// `GET /v1/experiments/<id>`: the request's lifecycle state, with the
/// full report row once done. `?wait=1` blocks until completion.
fn status(stream: &mut TcpStream, requests: &RequestMap, id_text: &str, wait: bool) {
    let Some(handle) = lookup(requests, id_text) else {
        error_response(stream, 404, "no such request id");
        return;
    };
    if wait {
        let _ = handle.wait();
    }
    let (status_label, report, ok) = match handle.try_outcome() {
        Some(outcome) => (
            RequestStatus::Done.label(),
            outcome.report.to_json(),
            Json::Bool(outcome.is_ok()),
        ),
        None => (handle.status().label(), Json::Null, Json::Null),
    };
    let body = Json::obj(vec![
        ("id", Json::Num(handle.id() as f64)),
        ("experiment", Json::Str(handle.name().to_string())),
        ("digest", Json::Str(handle.digest().to_string())),
        ("status", Json::Str(status_label.to_string())),
        ("ok", ok),
        ("report", report),
    ]);
    respond(stream, 200, "application/json", &body.encode());
}

/// `GET /v1/experiments/<id>/artifact`: the artifact's canonical JSON
/// encoding, byte-for-byte what the memo cache stores and the embedded
/// API encodes — the service's bit-identity contract.
fn artifact(stream: &mut TcpStream, requests: &RequestMap, id_text: &str) {
    let Some(handle) = lookup(requests, id_text) else {
        error_response(stream, 404, "no such request id");
        return;
    };
    let Some(outcome) = handle.try_outcome() else {
        error_response(stream, 409, "request has not finished");
        return;
    };
    match &outcome.artifact {
        Some(artifact) => respond(stream, 200, "application/json", &artifact.encode()),
        None => {
            let detail = outcome
                .report
                .error
                .clone()
                .unwrap_or_else(|| "request failed".to_string());
            error_response(stream, 500, &detail);
        }
    }
}

fn lookup(requests: &RequestMap, id_text: &str) -> Option<RequestHandle> {
    let id: u64 = id_text.parse().ok()?;
    requests
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&id)
        .cloned()
}

fn error_response(stream: &mut TcpStream, code: u16, detail: &str) {
    let body = Json::obj(vec![("error", Json::Str(detail.to_string()))]);
    respond(stream, code, "application/json", &body.encode());
}
