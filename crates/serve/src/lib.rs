//! # stacksim-serve
//!
//! The `stacksim serve` daemon: a thin HTTP/JSON layer over the
//! embeddable [`Sim`] session API (`stacksim_core::harness`). The server
//! owns one long-lived `Sim` — one warm memo cache, one registry, one
//! resilience policy — and translates requests onto it; everything
//! interesting (dedup, batching, memoization, fault opt-in) happens in
//! the session, so embedded and served callers behave identically and
//! artifacts are bit-identical across both paths.
//!
//! ## Endpoints
//!
//! | Method & path | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness: `{"status":"ok"}` |
//! | `GET /metrics` | the `stacksim-obs/1` metrics snapshot |
//! | `POST /v1/experiments` | submit; body `{"experiment":"fig3", ...}` |
//! | `GET /v1/experiments/<id>` | status + report; `?wait=1` long-polls (bounded; `202` on timeout) |
//! | `GET /v1/experiments/<id>/artifact` | the artifact's canonical JSON, verbatim |
//! | `POST /v1/explore` | synchronous design-space search; returns the frontier artifact |
//!
//! Submission bodies accept the same parameter overrides as
//! [`ExperimentRequest`]: `seed`, `scale` (`"test"`/`"paper"`),
//! `threads`, `chunk`, `solver_threads`, `faults` (opt this request
//! into the server's armed fault plan), and `deadline_ms` (a
//! per-request execution deadline, tightened against the server's
//! resilience policy). Identical in-flight submissions deduplicate onto
//! one execution and return the same `id`.
//!
//! ## Overload protection and crash recovery
//!
//! With `--max-pending` the session sheds submissions beyond the bound
//! with `503 + Retry-After`; with `--max-conns` excess concurrent
//! connections are turned away at accept with `429`. During the SIGTERM
//! drain the socket keeps answering — late clients get an immediate
//! `503 + Retry-After` instead of a hung connect. When a journal is
//! configured, every accepted request is durably appended before the
//! submit response and replayed at boot after a crash; the memo cache
//! makes replay idempotent, so recovered artifacts are bit-identical.
//!
//! `POST /v1/explore` accepts `{"spec": {..}, "mode": "grid", "budget":
//! N, "seed": N}` (every field optional) and runs the search in a
//! short-lived session sharing the server's memo cache, parameters and
//! job count — so repeated or overlapping explorations are served from
//! the same cache entries as everything else. The response is the
//! canonical `stacksim-explore/1` artifact.
//!
//! The accept loop runs on the caller's thread ([`Server::run`]) with a
//! small worker pool for connections, and drains gracefully: when the
//! shutdown flag flips, the listener stops accepting, in-flight
//! connections finish, and the session completes everything already
//! submitted before `run` returns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use stacksim_core::harness::json::Json;
use stacksim_core::harness::resilience::SITE_SERVE_ACCEPT;
use stacksim_core::harness::{
    obs as harness_obs, ExperimentRequest, MemoCache, RequestHandle, RequestJournal, RequestStatus,
    Resilience, Sim,
};
use stacksim_explore::{ExploreConfig, ExploreError, SearchMode, SpaceSpec};
use stacksim_faults::{Fault, FaultPlan};
use stacksim_workloads::{Scale, WorkloadParams};

use http::{read_request, reject, respond, respond_with, Request};

/// The `Retry-After` hint (seconds) on load-shedding responses.
const RETRY_AFTER_S: &str = "1";
/// Longest bounded long-poll `GET /v1/experiments/<id>?wait=1` honours.
const MAX_WAIT_MS: u64 = 30_000;

/// How the daemon is configured; see field docs. `Default` gives a
/// loopback server at paper scale with a disabled cache.
#[derive(Debug)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` picks a free one
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Connection worker threads.
    pub pool: usize,
    /// Base workload parameters requests resolve overrides against.
    pub params: WorkloadParams,
    /// Worker threads per experiment batch; `0` means one per CPU.
    pub jobs: usize,
    /// The shared memo cache.
    pub cache: MemoCache,
    /// The failure-handling policy.
    pub resilience: Resilience,
    /// The fault plan requests may opt into with `"faults": true`.
    /// Rules targeting the network sites (`serve.*` / `session.*`) are
    /// split out and armed *ambiently* for the daemon's whole lifetime —
    /// network chaos is per-daemon, not per-request.
    pub fault_plan: Option<FaultPlan>,
    /// Admission bound: queued+running experiment requests beyond this
    /// are shed with `503 + Retry-After`. `0` admits everything.
    pub max_pending: usize,
    /// Concurrent-connection cap: connections beyond this are rejected
    /// at accept with `429 + Retry-After`. `0` accepts everything.
    pub max_conns: usize,
    /// Per-socket I/O timeout, doubling as the whole-request read
    /// deadline (the slowloris bound).
    pub io_timeout: Duration,
    /// Journal accepted requests here (`stacksim-journal/1`) and replay
    /// unfinished ones at boot. `None` disables crash recovery.
    pub journal: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            pool: 4,
            params: WorkloadParams::paper(),
            jobs: 0,
            cache: MemoCache::disabled(),
            resilience: Resilience::default(),
            fault_plan: None,
            max_pending: 0,
            max_conns: 0,
            io_timeout: http::DEFAULT_IO_TIMEOUT,
            journal: None,
        }
    }
}

/// Requests the daemon has accepted, by id, shared across connection
/// workers. A `BTreeMap` keeps iteration order deterministic.
type RequestMap = Arc<Mutex<BTreeMap<u64, RequestHandle>>>;

/// What `POST /v1/explore` builds its short-lived sessions from: the
/// server's own cache, base parameters and job count, so explorations
/// hit the same memo entries as every other request.
#[derive(Debug, Clone)]
struct ExploreEnv {
    params: WorkloadParams,
    jobs: usize,
    cache: MemoCache,
}

/// A bound (but not yet serving) daemon. Call [`Server::run`] to serve.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    sim: Arc<Sim>,
    requests: RequestMap,
    pool: usize,
    max_conns: usize,
    io_timeout: Duration,
    explore_env: Arc<ExploreEnv>,
}

/// Answers a connection that is turned away *before* its request was
/// read (the 429 cap and the drain rejector): writes the rejection,
/// half-closes, then drains whatever the client had already sent —
/// closing with unread bytes queued would RST the response away.
fn reject_conn(stream: &mut TcpStream, status: u16, body: &str) {
    respond_with(
        stream,
        status,
        "application/json",
        &[("Retry-After", RETRY_AFTER_S)],
        body,
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    while matches!(std::io::Read::read(stream, &mut sink), Ok(n) if n > 0) {}
}

/// Splits a plan into its ambient network-chaos rules (`serve.*` /
/// `session.*` sites, armed for the daemon's lifetime) and the
/// experiment rules requests opt into per-batch.
fn partition_plan(plan: Option<FaultPlan>) -> (Option<FaultPlan>, Option<FaultPlan>) {
    let Some(plan) = plan else {
        return (None, None);
    };
    let (net, exp): (Vec<_>, Vec<_>) = plan
        .rules
        .into_iter()
        .partition(|r| r.site.starts_with("serve.") || r.site.starts_with("session."));
    let wrap = |rules: Vec<stacksim_faults::FaultRule>| {
        (!rules.is_empty()).then_some(FaultPlan {
            seed: plan.seed,
            rules,
        })
    };
    (wrap(net), wrap(exp))
}

impl Server {
    /// Binds the listen socket, builds the [`Sim`] session, enables the
    /// process metrics registry (the `/metrics` source), arms any
    /// ambient network-fault rules, and — when a journal is configured —
    /// recovers it and resubmits every accepted-but-unfinished request
    /// (idempotent through the memo cache; counted in
    /// `journal.replayed`).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound or the
    /// journal cannot be recovered.
    pub fn bind(options: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        stacksim_obs::enable();
        stacksim_obs::gauge(harness_obs::SERVE_DRAINING).set(0.0);
        let explore_env = Arc::new(ExploreEnv {
            params: options.params,
            jobs: options.jobs,
            cache: options.cache.clone(),
        });
        let (ambient_plan, exp_plan) = partition_plan(options.fault_plan);
        if let Some(ambient) = ambient_plan.clone() {
            stacksim_faults::arm(ambient);
        }
        let (journal, unfinished) = match &options.journal {
            Some(path) => {
                let recovery = RequestJournal::recover(path).map_err(std::io::Error::other)?;
                (Some(Arc::new(recovery.journal)), recovery.unfinished)
            }
            None => (None, Vec::new()),
        };
        let sim = Sim::builder()
            .params(options.params)
            .jobs(options.jobs)
            .cache(options.cache)
            .resilience(options.resilience)
            .fault_plan(exp_plan)
            .ambient_fault_plan(ambient_plan)
            .max_pending((options.max_pending > 0).then_some(options.max_pending))
            .journal(journal.clone())
            .build();
        let server = Server {
            listener,
            sim: Arc::new(sim),
            requests: Arc::new(Mutex::new(BTreeMap::new())),
            pool: options.pool.clamp(1, 64),
            max_conns: options.max_conns,
            io_timeout: options.io_timeout,
            explore_env,
        };
        server.replay(unfinished);
        if let Some(journal) = &journal {
            // every unfinished entry is re-appended under a fresh id by
            // now, so the recovery side file has served its purpose
            let _ = journal.discard_replay();
        }
        Ok(server)
    }

    /// Resubmits journal-recovered requests. Admission control applies
    /// to live traffic, not recovery: a shed resubmission is retried
    /// until the draining scheduler makes room.
    fn replay(&self, unfinished: Vec<ExperimentRequest>) {
        for request in unfinished {
            loop {
                match self.sim.submit(&request) {
                    Ok(handle) => {
                        self.requests
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(handle.id(), handle);
                        stacksim_obs::counter(harness_obs::JOURNAL_REPLAYED).add(1);
                        break;
                    }
                    Err(e) if e.kind() == "overloaded" => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    // an entry from an older registry (or a corrupted
                    // request) cannot replay; recovery must not wedge boot
                    Err(_) => break,
                }
            }
        }
    }

    /// The bound address (the real port when `addr` asked for `:0`).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the socket has no local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying session, for embedding tests and in-process
    /// clients.
    pub fn sim(&self) -> &Arc<Sim> {
        &self.sim
    }

    /// Serves until `shutdown` flips to `true`, then drains: the
    /// listener stops accepting, connection workers finish, and every
    /// experiment already submitted runs to completion.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on a non-transient accept failure.
    pub fn run(self, shutdown: &AtomicBool) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let active = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(self.pool);
        for i in 0..self.pool {
            let rx = rx.clone();
            let sim = self.sim.clone();
            let requests = self.requests.clone();
            let explore_env = self.explore_env.clone();
            let active = active.clone();
            let io_timeout = self.io_timeout;
            let worker = std::thread::Builder::new()
                .name(format!("serve-conn-{i}"))
                .spawn(move || loop {
                    let next = {
                        let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                        guard.recv()
                    };
                    match next {
                        Ok(mut stream) => {
                            handle_connection(
                                &mut stream,
                                &sim,
                                &requests,
                                &explore_env,
                                io_timeout,
                            );
                            active.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(_) => return, // channel closed: drain complete
                    }
                });
            if let Ok(handle) = worker {
                workers.push(handle);
            }
        }

        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    if stacksim_faults::armed() {
                        match stacksim_faults::check(SITE_SERVE_ACCEPT, "conn") {
                            // the connection never happened, as far as the
                            // client can tell: dropped without a response
                            Some(Fault::IoTransient | Fault::Truncate) => continue,
                            Some(Fault::Stall { ms }) => {
                                std::thread::sleep(Duration::from_millis(ms));
                            }
                            _ => {}
                        }
                    }
                    // queued-or-processing connections beyond the cap are
                    // turned away before they can tie up a worker
                    if self.max_conns > 0 && active.load(Ordering::SeqCst) >= self.max_conns {
                        stacksim_obs::counter(harness_obs::SERVE_CONNS_REJECTED).add(1);
                        reject_conn(&mut stream, 429, "{\"error\":\"too many connections\"}");
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    if tx.send(stream).is_err() {
                        break; // every worker died; nothing can serve
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                // a signal interrupting accept re-checks the flag
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // graceful drain: close the funnel, finish connections, then let
        // the session complete everything already submitted. A rejector
        // keeps answering the socket meanwhile — late clients get an
        // immediate `503 + Retry-After` instead of a hung connect.
        stacksim_obs::gauge(harness_obs::SERVE_DRAINING).set(1.0);
        let draining = Arc::new(AtomicBool::new(true));
        let rejector = self.listener.try_clone().ok().and_then(|listener| {
            let draining = draining.clone();
            std::thread::Builder::new()
                .name("serve-drain-reject".to_string())
                .spawn(move || {
                    while draining.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((mut stream, _)) => {
                                reject_conn(&mut stream, 503, "{\"error\":\"server is draining\"}");
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            Err(_) => return,
                        }
                    }
                })
                .ok()
        });
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        self.sim.shutdown();
        draining.store(false, Ordering::SeqCst);
        if let Some(rejector) = rejector {
            let _ = rejector.join();
        }
        stacksim_obs::gauge(harness_obs::SERVE_DRAINING).set(0.0);
        Ok(())
    }
}

/// Routes one connection's request and writes its response.
fn handle_connection(
    stream: &mut TcpStream,
    sim: &Sim,
    requests: &RequestMap,
    explore_env: &ExploreEnv,
    io_timeout: Duration,
) {
    let request = match read_request(stream, io_timeout) {
        Ok(r) => r,
        Err(e) => {
            reject(stream, &e);
            return;
        }
    };
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => respond(stream, 200, "application/json", "{\"status\":\"ok\"}\n"),
        ("GET", "/metrics") => {
            let snapshot = stacksim_obs::registry().snapshot().encode();
            respond(stream, 200, "application/json", &snapshot);
        }
        ("POST", "/v1/experiments") => submit(stream, sim, requests, &request),
        ("POST", "/v1/explore") => explore(stream, explore_env, &request),
        ("GET", path) if path.starts_with("/v1/experiments/") => {
            let rest = &path["/v1/experiments/".len()..];
            if let Some(id_text) = rest.strip_suffix("/artifact") {
                artifact(stream, requests, id_text);
            } else {
                status(stream, requests, rest, &request);
            }
        }
        ("GET" | "POST", _) => error_response(stream, 404, "no such endpoint"),
        _ => error_response(stream, 405, "method not allowed"),
    }
}

/// `POST /v1/experiments`: parse the body, submit, answer with the
/// request's id and current status. Deduplicated submissions answer with
/// the existing id.
fn submit(stream: &mut TcpStream, sim: &Sim, requests: &RequestMap, request: &Request) {
    let experiment_request = match parse_submission(&request.body) {
        Ok(r) => r,
        Err(detail) => {
            error_response(stream, 400, &detail);
            return;
        }
    };
    let handle = match sim.submit(&experiment_request) {
        Ok(h) => h,
        Err(e) if e.kind() == "overloaded" => {
            let body = Json::obj(vec![("error", Json::Str(e.to_string()))]);
            respond_with(
                stream,
                503,
                "application/json",
                &[("Retry-After", RETRY_AFTER_S)],
                &body.encode(),
            );
            return;
        }
        Err(e) => {
            let code = match e.kind() {
                "unknown-experiment" => 404,
                _ => 400,
            };
            error_response(stream, code, &e.to_string());
            return;
        }
    };
    requests
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(handle.id(), handle.clone());
    let body = Json::obj(vec![
        ("id", Json::Num(handle.id() as f64)),
        ("experiment", Json::Str(handle.name().to_string())),
        ("digest", Json::Str(handle.digest().to_string())),
        ("status", Json::Str(handle.status().label().to_string())),
    ]);
    respond(stream, 200, "application/json", &body.encode());
}

/// `POST /v1/explore`: run one synchronous design-space search in a
/// short-lived session sharing the server's cache, parameters and job
/// count, and answer with the canonical `stacksim-explore/1` artifact.
fn explore(stream: &mut TcpStream, env: &ExploreEnv, request: &Request) {
    let cfg = match parse_explore(&request.body) {
        Ok(cfg) => cfg,
        Err(detail) => {
            error_response(stream, 400, &detail);
            return;
        }
    };
    match stacksim_explore::run_exploration(&cfg, env.params, env.jobs, env.cache.clone()) {
        Ok(outcome) => respond(stream, 200, "application/json", &outcome.artifact_json),
        Err(e @ ExploreError::Spec(_)) => error_response(stream, 400, &e.to_string()),
        Err(e) => error_response(stream, 500, &e.to_string()),
    }
}

/// Decodes an explore body (`spec`, `mode`, `budget`, `seed`, each
/// optional) into an [`ExploreConfig`].
fn parse_explore(body: &str) -> Result<ExploreConfig, String> {
    let mut cfg = ExploreConfig::grid(SpaceSpec::default_space());
    if body.trim().is_empty() {
        return Ok(cfg);
    }
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    if let Some(spec) = doc.get("spec") {
        cfg.spec = SpaceSpec::parse(&spec.encode())?;
    }
    if let Some(v) = doc.get("mode") {
        cfg.mode = v
            .as_str()
            .and_then(SearchMode::parse)
            .ok_or("'mode' must be \"grid\", \"random\" or \"evolve\"")?;
    }
    if let Some(v) = doc.get("budget") {
        cfg.budget = v.as_u64().ok_or("'budget' must be an unsigned integer")? as usize;
    }
    if let Some(v) = doc.get("seed") {
        cfg.seed = v.as_u64().ok_or("'seed' must be an unsigned integer")?;
    }
    Ok(cfg)
}

/// Decodes a submission body into an [`ExperimentRequest`].
fn parse_submission(body: &str) -> Result<ExperimentRequest, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let name = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("body needs a string 'experiment' field")?;
    let mut req = ExperimentRequest::new(name);
    if let Some(v) = doc.get("seed") {
        req = req.seed(v.as_u64().ok_or("'seed' must be an unsigned integer")?);
    }
    if let Some(v) = doc.get("scale") {
        req = req.scale(match v.as_str() {
            Some("test") => Scale::Test,
            Some("paper") => Scale::Paper,
            _ => return Err("'scale' must be \"test\" or \"paper\"".to_string()),
        });
    }
    let usize_field = |v: &Json, what: &str| -> Result<usize, String> {
        v.as_u64()
            .map(|n| n as usize)
            .ok_or(format!("'{what}' must be an unsigned integer"))
    };
    if let Some(v) = doc.get("threads") {
        req = req.threads(usize_field(v, "threads")?);
    }
    if let Some(v) = doc.get("chunk") {
        req = req.chunk(usize_field(v, "chunk")?);
    }
    if let Some(v) = doc.get("solver_threads") {
        req = req.solver_threads(usize_field(v, "solver_threads")?);
    }
    if let Some(v) = doc.get("faults") {
        req = req.faults(v.as_bool().ok_or("'faults' must be a boolean")?);
    }
    if let Some(v) = doc.get("deadline_ms") {
        req = req.deadline_ms(
            v.as_u64()
                .filter(|&ms| ms > 0)
                .ok_or("'deadline_ms' must be a positive integer")?,
        );
    }
    Ok(req)
}

/// `GET /v1/experiments/<id>`: the request's lifecycle state, with the
/// full report row once done. `?wait=1` long-polls, *bounded*: it blocks
/// until completion or `timeout_ms` (default and ceiling 30 s), then
/// answers `202 Accepted` with the current status — a slow experiment
/// can never pin a connection worker indefinitely.
fn status(stream: &mut TcpStream, requests: &RequestMap, id_text: &str, request: &Request) {
    let Some(handle) = lookup(requests, id_text) else {
        error_response(stream, 404, "no such request id");
        return;
    };
    let mut timed_out = false;
    if request.query_flag("wait") {
        let wait_ms = request
            .query_param("timeout_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(MAX_WAIT_MS)
            .min(MAX_WAIT_MS);
        timed_out = handle
            .wait_timeout(Duration::from_millis(wait_ms))
            .is_none();
    }
    let (status_label, report, ok) = match handle.try_outcome() {
        Some(outcome) => (
            RequestStatus::Done.label(),
            outcome.report.to_json(),
            Json::Bool(outcome.is_ok()),
        ),
        None => (handle.status().label(), Json::Null, Json::Null),
    };
    let body = Json::obj(vec![
        ("id", Json::Num(handle.id() as f64)),
        ("experiment", Json::Str(handle.name().to_string())),
        ("digest", Json::Str(handle.digest().to_string())),
        ("status", Json::Str(status_label.to_string())),
        ("ok", ok),
        ("report", report),
    ]);
    let code = if timed_out { 202 } else { 200 };
    respond(stream, code, "application/json", &body.encode());
}

/// `GET /v1/experiments/<id>/artifact`: the artifact's canonical JSON
/// encoding, byte-for-byte what the memo cache stores and the embedded
/// API encodes — the service's bit-identity contract.
fn artifact(stream: &mut TcpStream, requests: &RequestMap, id_text: &str) {
    let Some(handle) = lookup(requests, id_text) else {
        error_response(stream, 404, "no such request id");
        return;
    };
    let Some(outcome) = handle.try_outcome() else {
        error_response(stream, 409, "request has not finished");
        return;
    };
    match &outcome.artifact {
        Some(artifact) => respond(stream, 200, "application/json", &artifact.encode()),
        None => {
            let detail = outcome
                .report
                .error
                .clone()
                .unwrap_or_else(|| "request failed".to_string());
            error_response(stream, 500, &detail);
        }
    }
}

fn lookup(requests: &RequestMap, id_text: &str) -> Option<RequestHandle> {
    let id: u64 = id_text.parse().ok()?;
    requests
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&id)
        .cloned()
}

fn error_response(stream: &mut TcpStream, code: u16, detail: &str) {
    let body = Json::obj(vec![("error", Json::Str(detail.to_string()))]);
    respond(stream, code, "application/json", &body.encode());
}
