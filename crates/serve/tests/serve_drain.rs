//! Integration: the SIGTERM drain window — while in-flight work finishes,
//! the socket keeps answering: late connections get an immediate
//! `503 + Retry-After` instead of a hung connect, `serve.draining`
//! flags the window in the metrics, and the gauge drops back to zero
//! once the drain completes.
//!
//! One test function on purpose: the metrics registry is process-global,
//! so concurrent tests would race its counters.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stacksim_faults::{Fault, FaultPlan, FaultRule};
use stacksim_serve::{ServeOptions, Server};
use stacksim_workloads::WorkloadParams;

/// Sends one close-after-response request; returns (status, full text).
fn request(addr: &SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let message = format!(
        "{head}\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    (status, text)
}

fn gauge(name: &str) -> f64 {
    stacksim_obs::registry()
        .snapshot()
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN)
}

#[test]
fn connections_during_the_drain_window_get_an_immediate_503() {
    // a stalled in-flight experiment keeps the drain window open long
    // enough to probe it
    let plan = FaultPlan {
        seed: 5,
        rules: vec![FaultRule::always(
            "harness.dispatch",
            "fig5:gauss",
            Fault::Stall { ms: 2000 },
        )],
    };
    let mut options = ServeOptions::default();
    options.addr = "127.0.0.1:0".to_string();
    options.pool = 2;
    options.jobs = 1;
    options.params = WorkloadParams::test();
    options.fault_plan = Some(plan);
    let server = Server::bind(options).expect("bind on a free port");
    let addr = server.local_addr().expect("bound address");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let daemon = std::thread::spawn(move || server.run(&flag));

    let (code, text) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig5:gauss\",\"faults\":true}",
    );
    assert_eq!(code, 200, "{text}");
    assert_eq!(gauge("serve.draining"), 0.0, "not draining while serving");

    // flip the flag and give the accept loop a beat to hand over to the
    // drain rejector
    shutdown.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(gauge("serve.draining"), 1.0, "the drain window is flagged");

    // a late client is answered at once, not left hanging on connect
    let (code, text) = request(&addr, "GET /healthz HTTP/1.1", "");
    assert_eq!(code, 503, "{text}");
    assert!(text.contains("Retry-After: 1"), "{text}");
    assert!(text.contains("draining"), "{text}");

    let outcome = daemon.join().expect("daemon thread must not panic");
    assert!(outcome.is_ok(), "{outcome:?}");
    assert_eq!(gauge("serve.draining"), 0.0, "the gauge resets after drain");
}
