//! Integration: the daemon end-to-end over real sockets — liveness,
//! submit/status/artifact, the bit-identity contract between the direct,
//! embedded and HTTP paths, warm-cache serving with visible counters,
//! and a clean drain when the shutdown flag flips.
//!
//! One test function on purpose: the metrics registry is process-global,
//! so concurrent tests would race its counters.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use stacksim_core::harness::json::Json;
use stacksim_core::harness::{run_one, ExperimentRequest, MemoCache};
use stacksim_serve::{ServeOptions, Server};
use stacksim_workloads::WorkloadParams;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends one close-after-response request; returns (status, body).
fn request(addr: &SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let message = format!(
        "{head}\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

#[test]
fn daemon_serves_bit_identical_artifacts_and_drains_cleanly() {
    let dir = scratch_dir();
    let mut options = ServeOptions::default();
    options.addr = "127.0.0.1:0".to_string();
    options.pool = 2;
    options.jobs = 1;
    options.params = WorkloadParams::test();
    options.cache = MemoCache::builder().dir(&dir).shards(4).build();
    let server = Server::bind(options).expect("bind on a free port");
    let addr = server.local_addr().expect("bound address");
    let sim = server.sim().clone();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let daemon = std::thread::spawn(move || server.run(&flag));

    // liveness
    let (code, body) = request(&addr, "GET /healthz HTTP/1.1", "");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // the reference result: the plain in-process path, no service at all
    let direct = run_one("fig3", WorkloadParams::test()).expect("direct fig3");

    // submit over HTTP, wait, and fetch the artifact
    let (code, body) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig3\"}",
    );
    assert_eq!(code, 200, "{body}");
    let doc = Json::parse(&body).expect("submission response is JSON");
    let id = doc.get("id").and_then(Json::as_u64).expect("id");
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("fig3"));

    let (code, body) = request(
        &addr,
        &format!("GET /v1/experiments/{id}?wait=1 HTTP/1.1"),
        "",
    );
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("status response is JSON");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    let report = doc
        .get("report")
        .expect("finished status embeds the report");
    assert_eq!(report.get("cached").and_then(Json::as_bool), Some(false));

    let (code, via_http) = request(
        &addr,
        &format!("GET /v1/experiments/{id}/artifact HTTP/1.1"),
        "",
    );
    assert_eq!(code, 200);
    assert_eq!(
        via_http,
        direct.encode(),
        "HTTP artifact must be bit-identical to the direct path"
    );

    // the embedded path on the same session: same bytes, warm cache
    let embedded = sim
        .submit(&ExperimentRequest::new("fig3"))
        .expect("embedded submit")
        .wait();
    assert!(embedded.is_ok(), "{:?}", embedded.report.error);
    assert_eq!(
        embedded.artifact.as_ref().expect("artifact").encode(),
        via_http,
        "embedded artifact must be bit-identical to the HTTP path"
    );
    assert!(
        embedded.report.cached,
        "second run is served from the cache"
    );

    // a second HTTP submission of the same experiment: new id, cache hit
    let (code, body) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig3\"}",
    );
    assert_eq!(code, 200);
    let id2 = Json::parse(&body)
        .expect("JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    assert_ne!(id2, id, "the first request finished, so no dedup");
    let (_, body) = request(
        &addr,
        &format!("GET /v1/experiments/{id2}?wait=1 HTTP/1.1"),
        "",
    );
    assert!(body.contains("\"cached\":true"), "{body}");

    // the cache hits and request counts are visible in /metrics
    let (code, body) = request(&addr, "GET /metrics HTTP/1.1", "");
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("metrics are JSON");
    let counters = doc.get("counters").expect("counters object");
    let requests = counters
        .get("serve.requests")
        .and_then(Json::as_u64)
        .expect("serve.requests counter");
    assert!(requests >= 3, "two HTTP + one embedded, got {requests}");
    let hits = counters
        .get("harness.cache_hits")
        .and_then(Json::as_u64)
        .expect("harness.cache_hits counter");
    assert!(hits >= 2, "embedded + second HTTP were hits, got {hits}");
    assert!(body.contains("\"serve.inflight\""), "{body}");

    // error surfaces
    let (code, _) = request(&addr, "GET /v1/experiments/9999 HTTP/1.1", "");
    assert_eq!(code, 404);
    let (code, _) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig99\"}",
    );
    assert_eq!(code, 404);
    let (code, _) = request(&addr, "GET /nowhere HTTP/1.1", "");
    assert_eq!(code, 404);
    let (code, _) = request(&addr, "DELETE /healthz HTTP/1.1", "");
    assert_eq!(code, 405);

    // clean drain: flip the flag, the accept loop exits, workers join,
    // and the session shuts down without error
    shutdown.store(true, Ordering::SeqCst);
    let outcome = daemon.join().expect("daemon thread must not panic");
    assert!(outcome.is_ok(), "{outcome:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
