//! Integration: admission control under load — with `--max-pending N`,
//! N in-flight requests hold their slots and every further distinct
//! submission is shed with `503 + Retry-After`, counted in `serve.shed`;
//! completions release slots and shed callers succeed on retry.
//!
//! One test function on purpose: the metrics registry is process-global,
//! so concurrent tests would race its counters (this file asserts exact
//! counts, so it must be the only serve traffic in the process).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use stacksim_core::harness::json::Json;
use stacksim_faults::{Fault, FaultPlan, FaultRule};
use stacksim_serve::{ServeOptions, Server};
use stacksim_workloads::WorkloadParams;

/// Sends one close-after-response request; returns (status, full text).
fn request(addr: &SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let message = format!(
        "{head}\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    (status, text)
}

fn counter(addr: &SocketAddr, name: &str) -> u64 {
    let (code, text) = request(addr, "GET /metrics HTTP/1.1", "");
    assert_eq!(code, 200);
    let body = text.split_once("\r\n\r\n").expect("metrics body").1;
    Json::parse(body)
        .expect("metrics are JSON")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn submissions_past_the_pending_bound_shed_deterministically() {
    const MAX_PENDING: usize = 2;
    const SHED: u64 = 3;
    // a stall at dispatch pins the admitted requests' slots long enough
    // that the whole submission burst happens at the bound
    let plan = FaultPlan {
        seed: 3,
        rules: vec![FaultRule::always(
            "harness.dispatch",
            "fig5:gauss",
            Fault::Stall { ms: 1500 },
        )],
    };
    let mut options = ServeOptions::default();
    options.addr = "127.0.0.1:0".to_string();
    options.pool = 2;
    options.jobs = 1;
    options.params = WorkloadParams::test();
    options.fault_plan = Some(plan);
    options.max_pending = MAX_PENDING;
    let server = Server::bind(options).expect("bind on a free port");
    let addr = server.local_addr().expect("bound address");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let daemon = std::thread::spawn(move || server.run(&flag));

    // fill the admission window: two distinct stalled submissions
    let mut admitted = Vec::new();
    for seed in 0..MAX_PENDING as u64 {
        let (code, text) = request(
            &addr,
            "POST /v1/experiments HTTP/1.1",
            &format!("{{\"experiment\":\"fig5:gauss\",\"faults\":true,\"seed\":{seed}}}"),
        );
        assert_eq!(code, 200, "{text}");
        let body = text.split_once("\r\n\r\n").expect("body").1;
        let id = Json::parse(body)
            .expect("JSON")
            .get("id")
            .and_then(Json::as_u64)
            .expect("id");
        admitted.push(id);
    }

    // every further distinct submission is shed: 503, Retry-After, and
    // nothing was enqueued
    for seed in 0..SHED {
        let (code, text) = request(
            &addr,
            "POST /v1/experiments HTTP/1.1",
            &format!("{{\"experiment\":\"fig5:pcg\",\"seed\":{seed}}}"),
        );
        assert_eq!(code, 503, "{text}");
        assert!(text.contains("Retry-After: 1"), "{text}");
        assert!(text.contains("overloaded"), "{text}");
    }
    assert_eq!(
        counter(&addr, "serve.shed"),
        SHED,
        "exactly the over-bound submissions were shed"
    );

    // a duplicate of in-flight work is admitted even at the bound: it
    // coalesces onto the existing slot instead of consuming one
    let (code, text) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig5:gauss\",\"faults\":true,\"seed\":0}",
    );
    assert_eq!(code, 200, "{text}");
    let body = text.split_once("\r\n\r\n").expect("body").1;
    let dup = Json::parse(body)
        .expect("JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    assert_eq!(dup, admitted[0], "dedup, not a new slot");
    assert_eq!(counter(&addr, "serve.shed"), SHED, "the dedup was not shed");

    // every admitted request completes despite the overload burst
    for id in &admitted {
        let mut done = false;
        for _ in 0..20 {
            let (code, text) = request(
                &addr,
                &format!("GET /v1/experiments/{id}?wait=1&timeout_ms=5000 HTTP/1.1"),
                "",
            );
            if code == 200 && text.contains("\"status\":\"done\"") {
                assert!(text.contains("\"ok\":true"), "{text}");
                done = true;
                break;
            }
            assert_eq!(code, 202, "long-poll timeout answers 202: {text}");
        }
        assert!(done, "request {id} never completed");
    }

    // completions released the slots: a shed request now admits and runs
    let (code, text) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig5:pcg\",\"seed\":0}",
    );
    assert_eq!(code, 200, "{text}");
    assert_eq!(counter(&addr, "serve.shed"), SHED, "no further shedding");

    shutdown.store(true, Ordering::SeqCst);
    let outcome = daemon.join().expect("daemon thread must not panic");
    assert!(outcome.is_ok(), "{outcome:?}");
}
