//! Integration: slowloris defense — clients that drip-feed headers,
//! stall mid-body, or never read their response are bounded by the
//! per-socket timeout and the whole-request read deadline, and shed
//! without poisoning the connection workers: the daemon answers healthy
//! traffic promptly throughout.
//!
//! One test function on purpose: the metrics registry is process-global,
//! so concurrent tests would race its counters.

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stacksim_serve::{ServeOptions, Server};
use stacksim_workloads::WorkloadParams;

/// Sends one close-after-response request; returns (status, full text).
fn request(addr: &SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let message = format!(
        "{head}\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    (status, text)
}

/// Reads until EOF with a hard cap, tolerating timeouts: what a shed
/// client sees before the server hangs up.
fn drain(stream: &mut TcpStream) -> String {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut text = String::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => text.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(_) => break,
        }
    }
    text
}

#[test]
fn slow_and_stuck_clients_are_shed_without_poisoning_workers() {
    const IO_TIMEOUT: Duration = Duration::from_millis(400);
    let mut options = ServeOptions::default();
    options.addr = "127.0.0.1:0".to_string();
    options.pool = 2;
    options.jobs = 1;
    options.params = WorkloadParams::test();
    options.io_timeout = IO_TIMEOUT;
    let server = Server::bind(options).expect("bind on a free port");
    let addr = server.local_addr().expect("bound address");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let daemon = std::thread::spawn(move || server.run(&flag));

    let (code, _) = request(&addr, "GET /healthz HTTP/1.1", "");
    assert_eq!(code, 200, "baseline liveness");

    // 1. header drip-feed: one byte at a time, forever under the socket
    //    timeout per byte — the whole-request deadline sheds it anyway
    let started = Instant::now();
    let mut dripper = TcpStream::connect(addr).expect("connect");
    for chunk in ["GET /heal", "thz HT", "TP/1.1\r\n", "Host: sl", "ow\r\n"] {
        if dripper.write_all(chunk.as_bytes()).is_err() {
            break; // already shed: the server hung up mid-drip
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    let answer = drain(&mut dripper);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the dripper was bounded, not serviced at its own pace"
    );
    assert!(
        answer.is_empty() || answer.starts_with("HTTP/1.1 400"),
        "a shed dripper sees a 400 or a hangup, got {answer:?}"
    );

    // 2. stalled body: Content-Length promises bytes that never arrive
    let mut staller = TcpStream::connect(addr).expect("connect");
    staller
        .write_all(b"POST /v1/experiments HTTP/1.1\r\nHost: t\r\nContent-Length: 512\r\n\r\n{\"exp")
        .expect("send partial body");
    let answer = drain(&mut staller);
    assert!(
        answer.is_empty() || answer.starts_with("HTTP/1.1 400"),
        "a stalled body is shed, got {answer:?}"
    );

    // 3. mute connection: opens and never writes a byte
    let mut mute = TcpStream::connect(addr).expect("connect");
    let answer = drain(&mut mute);
    assert!(
        answer.is_empty() || answer.starts_with("HTTP/1.1 400"),
        "a mute connection is shed, got {answer:?}"
    );

    // with every worker having just chewed through an abusive socket,
    // honest traffic is still served promptly — no worker was poisoned
    let started = Instant::now();
    let (code, text) = request(&addr, "GET /healthz HTTP/1.1", "");
    assert_eq!(code, 200, "{text}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "healthz answered promptly after the slowloris burst"
    );

    // and real work still runs end to end
    let (code, text) = request(
        &addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig5:gauss\"}",
    );
    assert_eq!(code, 200, "{text}");

    shutdown.store(true, Ordering::SeqCst);
    let outcome = daemon.join().expect("daemon thread must not panic");
    assert!(outcome.is_ok(), "{outcome:?}");
}
