//! Declared fault-injection sites of the thermal solver.
//!
//! The declared-site table is the SL070 lint contract: every site the
//! solver hands to [`stacksim_faults::check`] must appear in [`SITES`],
//! and every declared site must actually be referenced by an injection
//! point.

/// Component tag of every fault site the solver owns.
pub const COMPONENT: &str = "thermal";

/// The CG solve entry: keyed by the preconditioner label (`jacobi` /
/// `line-z`), supports `no-convergence` and `stall`.
pub const SITE_CG: &str = "thermal.cg";

/// Every fault site the solver may check.
pub const SITES: &[&str] = &[SITE_CG];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_sites_are_unique_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for site in SITES {
            assert!(seen.insert(site), "duplicate declared site {site}");
            assert!(
                site.starts_with("thermal."),
                "{site} must carry the {COMPONENT} prefix"
            );
        }
    }
}
