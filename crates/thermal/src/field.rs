//! Solved temperature fields.

/// The steady-state temperature solution over the whole stack:
/// `layers × ny × nx` cell temperatures in °C.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    layer_names: Vec<String>,
    /// Temperatures, layer-major then row-major.
    t: Vec<f64>,
}

impl TemperatureField {
    pub(crate) fn new(nx: usize, ny: usize, layer_names: Vec<String>, t: Vec<f64>) -> Self {
        assert_eq!(t.len(), nx * ny * layer_names.len());
        TemperatureField {
            nx,
            ny,
            layer_names,
            t,
        }
    }

    /// Reassembles a field from its parts — the inverse of reading
    /// [`dims`](Self::dims), [`layer_names`](Self::layer_names) and the
    /// per-layer maps, used to deserialize memoized artifacts.
    ///
    /// # Panics
    ///
    /// Panics if `t.len() != nx * ny * layer_names.len()`.
    pub fn from_parts(nx: usize, ny: usize, layer_names: Vec<String>, t: Vec<f64>) -> Self {
        TemperatureField::new(nx, ny, layer_names, t)
    }

    /// Grid resolution `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layer_names.len()
    }

    /// Layer names, heat-sink side first.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// Every cell temperature, layer-major then row-major — the raw solver
    /// vector. Used to warm-start a related solve
    /// ([`System::steady_from`](crate::System::steady_from)) and by the
    /// bit-identity tests of the solver's determinism contract.
    pub fn cells(&self) -> &[f64] {
        &self.t
    }

    /// Peak temperature anywhere in the stack (°C).
    pub fn peak(&self) -> f64 {
        self.t.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum temperature anywhere in the stack (°C).
    pub fn min(&self) -> f64 {
        self.t.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// One layer's temperature map (row-major `ny × nx`).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: usize) -> &[f64] {
        assert!(layer < self.layer_count(), "layer out of range");
        &self.t[layer * self.nx * self.ny..(layer + 1) * self.nx * self.ny]
    }

    /// One layer's map by name.
    pub fn layer_by_name(&self, name: &str) -> Option<&[f64]> {
        self.layer_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.layer(i))
    }

    /// Peak temperature within one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_peak(&self, layer: usize) -> f64 {
        self.layer(layer)
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum temperature within one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_min(&self, layer: usize) -> f64 {
        self.layer(layer)
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders a layer as a coarse ASCII heat map (for the Fig. 6/8 thermal
    /// maps in terminal output). Hotter cells get denser glyphs.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn ascii_map(&self, layer: usize) -> String {
        let map = self.layer(layer);
        let lo = self.layer_min(layer);
        let hi = self.layer_peak(layer);
        let span = (hi - lo).max(1e-9);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        // render top row (max y) first so the map is oriented naturally
        for j in (0..self.ny).rev() {
            for i in 0..self.nx {
                let t = map[j * self.nx + i];
                let g = (((t - lo) / span) * (glyphs.len() - 1) as f64).round() as usize;
                out.push(glyphs[g.min(glyphs.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> TemperatureField {
        // 2 layers of 2x2
        TemperatureField::new(
            2,
            2,
            vec!["a".into(), "b".into()],
            vec![50.0, 60.0, 70.0, 80.0, 41.0, 42.0, 43.0, 44.0],
        )
    }

    #[test]
    fn peaks_and_mins() {
        let f = field();
        assert_eq!(f.peak(), 80.0);
        assert_eq!(f.min(), 41.0);
        assert_eq!(f.layer_peak(0), 80.0);
        assert_eq!(f.layer_min(0), 50.0);
        assert_eq!(f.layer_peak(1), 44.0);
    }

    #[test]
    fn layer_lookup_by_name() {
        let f = field();
        assert_eq!(f.layer_by_name("b").unwrap()[0], 41.0);
        assert!(f.layer_by_name("zzz").is_none());
    }

    #[test]
    fn ascii_map_shape() {
        let f = field();
        let map = f.ascii_map(0);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        // hottest cell (80) renders the densest glyph
        assert!(lines[0].contains('@'), "{map}");
    }

    #[test]
    #[should_panic(expected = "layer out of range")]
    fn bad_layer_panics() {
        let _ = field().layer(5);
    }
}
