//! 3-D stacked-die thermal simulation.
//!
//! Reproduces the thermal methodology of §2.3 of *Die Stacking (3D)
//! Microarchitecture* (Black et al., MICRO 2006): steady-state heat
//! conduction (Eq. 1) over the full die/package/board system of Fig. 2 with
//! convective boundaries (Eq. 2), the Table 2 material constants, and the
//! face-to-face two-die structure of Fig. 1.
//!
//! * [`materials`] — the Table 2 constants.
//! * [`stack`] — layered stacks: [`LayerStack::planar`] (Fig. 2) and
//!   [`LayerStack::two_die`] (Fig. 1).
//! * [`solver`] — the finite-volume conduction solver (the paper uses FEM;
//!   both discretise the same conservation law on the same geometry).
//! * [`resistor`] — a 1-D resistor-stack cross-check model.
//! * [`sweep`] — conductivity sensitivity sweeps (Fig. 3).
//!
//! # Example
//!
//! ```
//! use stacksim_floorplan::PowerGrid;
//! use stacksim_thermal::{solve, Boundary, LayerStack, SolverConfig};
//!
//! let mut power = PowerGrid::zero(8, 8, 13.0, 11.0);
//! power.add(2, 2, 40.0);
//! let stack = LayerStack::planar(13.0, 11.0, power);
//! let cfg = SolverConfig::builder().nx(8).ny(8).build();
//! let field = solve(&stack, Boundary::default(), cfg)?;
//! assert!(field.peak() > 40.0);
//! # Ok::<(), stacksim_thermal::SolveError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
mod field;
pub mod materials;
pub mod obs;
mod pool;
mod resistor;
mod solver;
mod stack;
pub mod sweep;

pub use field::TemperatureField;
pub use resistor::ResistorStack;
pub use solver::reference;
pub use solver::{
    solve, solve_transient, solve_with_stats, Preconditioner, Solution, SolveError, SolveStats,
    SolverConfig, SolverConfigBuilder, SolverConfigError, System, TransientPoint,
    MAX_SOLVER_THREADS,
};
pub use stack::{Boundary, Layer, LayerStack, DESKTOP_H_TOP};
