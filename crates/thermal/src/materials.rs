//! Material thermal constants (Table 2 of the paper, plus standard package
//! materials for the parts of the Fig. 2 system the table omits).

/// Thermal conductivity in W/(m·K).
pub type Conductivity = f64;

/// Metres.
pub type Metres = f64;

/// A homogeneous material layer description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Human-readable name.
    pub name: &'static str,
    /// Thermal conductivity in W/(m·K).
    pub k: Conductivity,
}

/// Bulk silicon: 120 W/mK (Table 2).
pub const SILICON: Material = Material {
    name: "bulk Si",
    k: 120.0,
};

/// Cu metal stack including low-k dielectrics and via occupancy:
/// 12 W/mK over 12 µm (Table 2).
pub const CU_METAL: Material = Material {
    name: "Cu metal layers",
    k: 12.0,
};

/// Al (DRAM) metal stack including insulators: 9 W/mK over 2 µm (Table 2).
pub const AL_METAL: Material = Material {
    name: "Al metal layers",
    k: 9.0,
};

/// Die-to-die bonding layer including air cavities and d2d via density:
/// 60 W/mK over 15 µm (Table 2).
pub const BOND: Material = Material {
    name: "bonding layer",
    k: 60.0,
};

/// Heat sink (copper base): 400 W/mK (Table 2).
pub const HEAT_SINK: Material = Material {
    name: "heat sink",
    k: 400.0,
};

/// Integrated heat spreader (copper).
pub const IHS: Material = Material {
    name: "IHS",
    k: 400.0,
};

/// Thermal interface material between die and IHS.
pub const TIM: Material = Material {
    name: "TIM",
    k: 8.0,
};

/// C4 bump / underfill layer.
pub const UNDERFILL: Material = Material {
    name: "C4/underfill",
    k: 2.0,
};

/// Organic package substrate.
pub const PACKAGE: Material = Material {
    name: "package",
    k: 15.0,
};

/// Socket (pins + plastic).
pub const SOCKET: Material = Material {
    name: "socket",
    k: 0.5,
};

/// FR4 motherboard.
pub const MOTHERBOARD: Material = Material {
    name: "motherboard",
    k: 0.3,
};

/// Ambient temperature in °C (Table 2: 40 °C).
pub const AMBIENT_C: f64 = 40.0;

/// Default volumetric heat capacity ρc in J/(m³·K) for layers without a
/// specific value (between silicon's 1.63e6 and copper's 3.45e6). The
/// paper's Eq. (1) carries ρ and c per material; only the transient solver
/// consumes them, so a representative default suffices for the stack's
/// composite layers.
pub const RHOC_DEFAULT: f64 = 1.8e6;

/// Volumetric heat capacity of silicon, J/(m³·K).
pub const RHOC_SILICON: f64 = 1.63e6;

/// Volumetric heat capacity of copper, J/(m³·K).
pub const RHOC_COPPER: f64 = 3.45e6;

/// Table 2 layer thicknesses.
pub mod thickness {
    use super::Metres;

    /// Bulk Si of the die next to the heat sink: 750 µm.
    pub const SI_1: Metres = 750e-6;
    /// Bulk Si of the die next to the bumps: 20 µm.
    pub const SI_2: Metres = 20e-6;
    /// Logic (Cu) metal stack: 12 µm.
    pub const CU_METAL: Metres = 12e-6;
    /// DRAM (Al) metal stack: 2 µm.
    pub const AL_METAL: Metres = 2e-6;
    /// Die-to-die bonding layer: 15 µm.
    pub const BOND: Metres = 15e-6;
    /// Active-device silicon (where the power dissipates).
    pub const ACTIVE: Metres = 2e-6;
    /// Heat-sink base plate (the fins are folded into the boundary
    /// coefficient).
    pub const HEAT_SINK: Metres = 5e-3;
    /// Integrated heat spreader.
    pub const IHS: Metres = 2e-3;
    /// Thermal interface material (high-end solder TIM).
    pub const TIM: Metres = 20e-6;
    /// C4 bumps and underfill.
    pub const UNDERFILL: Metres = 70e-6;
    /// Package substrate.
    pub const PACKAGE: Metres = 1e-3;
    /// Socket.
    pub const SOCKET: Metres = 2e-3;
    /// Motherboard.
    pub const MOTHERBOARD: Metres = 1.6e-3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants_match_the_paper() {
        assert_eq!(SILICON.k, 120.0);
        assert_eq!(CU_METAL.k, 12.0);
        assert_eq!(AL_METAL.k, 9.0);
        assert_eq!(BOND.k, 60.0);
        assert_eq!(HEAT_SINK.k, 400.0);
        assert_eq!(AMBIENT_C, 40.0);
        assert_eq!(thickness::SI_1, 750e-6);
        assert_eq!(thickness::SI_2, 20e-6);
        assert_eq!(thickness::CU_METAL, 12e-6);
        assert_eq!(thickness::AL_METAL, 2e-6);
        assert_eq!(thickness::BOND, 15e-6);
    }

    #[test]
    fn metal_is_the_worst_conductor_of_the_die_stack() {
        // Fig. 3's point: the metal layers, not the bond, are the thermal
        // bottleneck of the 3D structure
        let (cu, al, bond) = (CU_METAL.k, AL_METAL.k, BOND.k);
        assert!(cu < bond && al < bond, "cu {cu}, al {al}, bond {bond}");
    }
}
