//! Observability instruments of the thermal solver.
//!
//! The declared-name table is the SL060 lint contract: every instrument
//! this crate registers at runtime must appear in [`NAMES`].
//!
//! Timing here never feeds back into the numerics — the solver stays
//! bit-identical with observability on or off, and the phase clocks are
//! armed only on the serial driver / worker 0 of the pool, so the
//! determinism contract of the multi-threaded CG is untouched.

use std::time::Instant;

/// Component tag of every instrument this crate owns.
pub const COMPONENT: &str = "thermal";

/// CG solves completed (successful only).
pub const CG_SOLVES: &str = "thermal.cg.solves";
/// CG iterations accumulated across solves.
pub const CG_ITERATIONS: &str = "thermal.cg.iterations";
/// Histogram of iterations per solve.
pub const CG_ITERS_PER_SOLVE: &str = "thermal.cg.iters_per_solve";
/// Final relative residual of the most recent solve.
pub const CG_RESIDUAL: &str = "thermal.cg.residual";
/// Wall time spent inside CG solves, microseconds.
pub const CG_SOLVE_US: &str = "thermal.cg.solve_us";
/// Wall time in the matrix-apply (`A·x` / fused `A·p` dot) phase, µs.
pub const PHASE_APPLY_US: &str = "thermal.phase.apply_us";
/// Wall time in the precondition (`z ← M⁻¹·r`) phase, µs.
pub const PHASE_PRECOND_US: &str = "thermal.phase.precond_us";
/// Wall time in the fused vector-update phases, µs.
pub const PHASE_UPDATE_US: &str = "thermal.phase.update_us";
/// Wall time folding reduction partials and scalars, µs.
pub const PHASE_REDUCE_US: &str = "thermal.phase.reduce_us";

/// Every instrument name this crate may register.
pub const NAMES: &[&str] = &[
    CG_SOLVES,
    CG_ITERATIONS,
    CG_ITERS_PER_SOLVE,
    CG_RESIDUAL,
    CG_SOLVE_US,
    PHASE_APPLY_US,
    PHASE_PRECOND_US,
    PHASE_UPDATE_US,
    PHASE_REDUCE_US,
];

/// Names of the structured events this crate emits (`begin`/`end` pairs
/// are spans; the rest are points). Listed for the event-schema docs and
/// the SL060 table.
pub const EVENT_SOLVE: &str = "thermal.cg.solve";
/// Residual-trajectory point event (serial driver only).
pub const EVENT_TRAJECTORY: &str = "thermal.cg.trajectory";

/// Phase indices of [`PhaseClock`].
pub(crate) const PH_APPLY: usize = 0;
pub(crate) const PH_PRECOND: usize = 1;
pub(crate) const PH_UPDATE: usize = 2;
pub(crate) const PH_REDUCE: usize = 3;

/// Accumulates per-phase wall time for one solve and flushes it to the
/// `thermal.phase.*` counters on drop (so every early return of the
/// worker loop still reports). Armed only when observability is enabled
/// at solve start; disarmed it never reads the clock again.
#[derive(Debug)]
pub(crate) struct PhaseClock {
    on: bool,
    mark: Instant,
    acc: [u64; 4],
}

impl PhaseClock {
    pub fn new(on: bool) -> Self {
        PhaseClock {
            on,
            mark: Instant::now(),
            acc: [0; 4],
        }
    }

    /// Attribute the wall time since the previous lap to `phase`.
    #[inline]
    pub fn lap(&mut self, phase: usize) {
        if self.on {
            let now = Instant::now();
            self.acc[phase] += now.duration_since(self.mark).as_micros() as u64;
            self.mark = now;
        }
    }
}

impl Drop for PhaseClock {
    fn drop(&mut self) {
        if !self.on {
            return;
        }
        for (name, v) in [
            (PHASE_APPLY_US, self.acc[PH_APPLY]),
            (PHASE_PRECOND_US, self.acc[PH_PRECOND]),
            (PHASE_UPDATE_US, self.acc[PH_UPDATE]),
            (PHASE_REDUCE_US, self.acc[PH_REDUCE]),
        ] {
            stacksim_obs::counter(name).add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_names_are_unique_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in NAMES {
            assert!(seen.insert(name), "duplicate declared name {name}");
            assert!(
                name.starts_with("thermal."),
                "{name} must carry the {COMPONENT} prefix"
            );
        }
    }

    #[test]
    fn disarmed_clock_reports_nothing() {
        let mut c = PhaseClock::new(false);
        c.lap(PH_APPLY);
        assert_eq!(c.acc, [0; 4]);
    }
}
