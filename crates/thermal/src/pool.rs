//! Synchronization primitives for the persistent-worker CG driver.
//!
//! The solver's grids are small enough (tens of thousands of cells) that
//! spawning threads per phase costs more than the phase's arithmetic, so
//! the multi-threaded CG driver spawns its workers once per solve and
//! coordinates the phases with [`SpinBarrier`]. Vectors are shared between
//! workers through [`SharedSlice`], whose disjointness discipline is
//! enforced by the driver's barrier structure (see the safety contract on
//! [`SharedSlice::range_mut`]).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A sense-reversing spin barrier.
///
/// `wait` busy-spins (yielding to the OS after a while, in case workers
/// are oversubscribed), which makes a barrier crossing take fractions of a
/// microsecond instead of the several microseconds a mutex/condvar barrier
/// needs — the CG loop crosses five to seven barriers per iteration, so
/// this is the difference between threading helping and hurting.
///
/// Every write made by a worker before `wait` is visible to every worker
/// after it returns (release/acquire ordering on the generation counter).
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    workers: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `workers` participants.
    pub(crate) fn new(workers: usize) -> Self {
        SpinBarrier {
            workers,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `workers` participants have called `wait`.
    pub(crate) fn wait(&self) {
        if self.workers == 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) == self.workers - 1 {
            // Last arrival: reset the count *before* releasing the others,
            // so a fast worker entering the next barrier sees zero.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.wrapping_add(1);
                if spins < 1 << 14 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A raw view of an `f64` slice that several workers may slice
/// concurrently, with disjointness enforced by the caller instead of the
/// borrow checker.
///
/// The CG driver partitions each vector differently per phase (layer slabs
/// for the stencil and updates, plane rows for the line-z preconditioner),
/// so no single `split_at_mut` decomposition can serve the whole solve.
/// Instead each phase derives exactly the sub-slices it needs and lets
/// them die before the next barrier.
///
/// The lifetime parameter pins the borrow of the underlying vector for as
/// long as any copy of the view exists, so the storage cannot move or drop
/// while workers hold views into it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SharedSlice<'a> {
    ptr: *mut f64,
    len: usize,
    _borrow: PhantomData<&'a mut [f64]>,
}

// SAFETY: the raw pointer is only dereferenced through `range`/`range_mut`,
// whose contracts confine every dereference to the barrier discipline
// described there. The data itself (f64) is Send + Sync.
unsafe impl Send for SharedSlice<'_> {}
unsafe impl Sync for SharedSlice<'_> {}

impl<'a> SharedSlice<'a> {
    /// Wraps a uniquely-borrowed slice. The original binding must not be
    /// accessed until every copy of the view is gone (the borrow checker
    /// enforces this through the lifetime).
    pub(crate) fn new(slice: &'a mut [f64]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: PhantomData,
        }
    }

    /// Shared read access to `lo..hi`.
    ///
    /// # Safety
    ///
    /// No worker may hold a `range_mut` overlapping `lo..hi` at any point
    /// between the barrier crossings that bracket this phase. (Reads
    /// concurrent with other reads are fine.)
    pub(crate) unsafe fn range(&self, lo: usize, hi: usize) -> &'a [f64] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts(self.ptr.add(lo), hi - lo)
    }

    /// Exclusive write access to `lo..hi`.
    ///
    /// # Safety
    ///
    /// The ranges derived by all workers between two consecutive barrier
    /// crossings must be pairwise disjoint from this one (mut/mut and
    /// mut/shared alike), and the returned slice must be dropped before
    /// the next barrier crossing. The CG driver guarantees this by fixed
    /// partitioning: each phase assigns every worker a distinct slab.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range_mut(&self, lo: usize, hi: usize) -> &'a mut [f64] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }

    /// Shared read access to the whole slice (same contract as [`range`]).
    ///
    /// # Safety
    ///
    /// See [`SharedSlice::range`].
    pub(crate) unsafe fn whole(&self) -> &'a [f64] {
        self.range(0, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_rendezvous_is_correct_across_generations() {
        const WORKERS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(WORKERS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between barriers every worker must observe the
                        // full round's increments.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * WORKERS) as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (WORKERS * ROUNDS) as u64);
    }

    #[test]
    fn single_worker_barrier_is_free() {
        let barrier = SpinBarrier::new(1);
        for _ in 0..10 {
            barrier.wait();
        }
    }

    #[test]
    fn shared_slice_partitions_disjointly() {
        let mut data = vec![0.0f64; 64];
        let shared = SharedSlice::new(&mut data);
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    // SAFETY: the four ranges are pairwise disjoint.
                    let slab = unsafe { shared.range_mut(w * 16, (w + 1) * 16) };
                    for v in slab {
                        *v = w as f64;
                    }
                });
            }
        });
        for w in 0..4 {
            assert!(data[w * 16..(w + 1) * 16].iter().all(|&v| v == w as f64));
        }
    }
}
