//! A one-dimensional resistor-stack model: the fast, spreading-free
//! cross-check and ablation baseline for the finite-volume solver.
//!
//! Each layer contributes an area resistance `t/k` (m²K/W); the boundary
//! contributes `1/h`. Peak temperature is estimated from the peak power
//! density flowing through the column above the source layer. The 1-D
//! model ignores lateral spreading, so it over-predicts hotspot temperature
//! — exactly the error the `ablations` bench quantifies.

use crate::stack::{Boundary, LayerStack};

/// One-dimensional vertical resistance summary of a stack.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistorStack {
    /// Area resistance from each layer's mid-plane to the heat-sink face,
    /// indexed by layer (m²·K/W), not counting the convective film.
    to_top: Vec<f64>,
    /// Convective film resistance at the heat-sink face (m²·K/W).
    film_top: f64,
    /// Ambient temperature (°C).
    ambient: f64,
}

impl ResistorStack {
    /// Builds the 1-D model from a stack and its boundary.
    pub fn new(stack: &LayerStack, bc: Boundary) -> Self {
        let layers = stack.layers();
        let mut to_top = Vec::with_capacity(layers.len());
        let mut acc = 0.0;
        for l in layers {
            // resistance from this layer's mid-plane up to the top face
            to_top.push(acc + l.thickness() / (2.0 * l.conductivity()));
            acc += l.thickness() / l.conductivity();
        }
        ResistorStack {
            to_top,
            film_top: 1.0 / bc.h_top,
            ambient: bc.ambient,
        }
    }

    /// Area resistance (m²K/W) from layer `idx`'s mid-plane to ambient
    /// through the heat sink.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn resistance_to_ambient(&self, idx: usize) -> f64 {
        self.to_top[idx] + self.film_top
    }

    /// Estimates the temperature of layer `idx` under a local power density
    /// `q` (W/m²) flowing entirely upwards — no lateral spreading.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn temperature(&self, idx: usize, q: f64) -> f64 {
        self.ambient + q * self.resistance_to_ambient(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Layer;

    fn stack() -> LayerStack {
        let mut s = LayerStack::new(10.0, 10.0);
        s.push(Layer::passive("lid", 1e-3, 100.0)); // R = 1e-5
        s.push(Layer::passive("die", 2e-3, 50.0)); // R = 4e-5
        s
    }

    #[test]
    fn resistances_accumulate_to_the_top() {
        let bc = Boundary {
            h_top: 1000.0,
            h_bottom: 10.0,
            ambient: 40.0,
        };
        let r = ResistorStack::new(&stack(), bc);
        // layer 0 mid-plane: half its own R
        assert!((r.resistance_to_ambient(0) - (0.5e-5 + 1e-3)).abs() < 1e-12);
        // layer 1 mid-plane: all of layer 0 + half of layer 1
        assert!((r.resistance_to_ambient(1) - (1e-5 + 2e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn temperature_is_linear_in_flux() {
        let bc = Boundary {
            h_top: 1000.0,
            h_bottom: 10.0,
            ambient: 40.0,
        };
        let r = ResistorStack::new(&stack(), bc);
        let t1 = r.temperature(1, 1e5);
        let t2 = r.temperature(1, 2e5);
        assert!((t2 - 40.0 - 2.0 * (t1 - 40.0)).abs() < 1e-9);
        assert!(t1 > 40.0);
    }

    #[test]
    fn film_dominates_weak_cooling() {
        let weak = ResistorStack::new(
            &stack(),
            Boundary {
                h_top: 10.0,
                h_bottom: 10.0,
                ambient: 40.0,
            },
        );
        let strong = ResistorStack::new(
            &stack(),
            Boundary {
                h_top: 1e5,
                h_bottom: 10.0,
                ambient: 40.0,
            },
        );
        assert!(weak.temperature(0, 1e4) > strong.temperature(0, 1e4));
    }
}
