//! Steady-state and transient 3-D finite-volume conduction solvers.
//!
//! Discretises Eq. (1) of the paper (`ρc ∂T/∂t = ∇·(K∇T) + Q`) on a
//! structured grid — one cell layer per material layer, `nx × ny` cells in
//! plane — with the Robin boundary condition of Eq. (2) at the heat-sink
//! and motherboard faces. The steady solver drops the time term; the
//! transient solver integrates it with implicit Euler. Both reduce to
//! symmetric positive-definite systems solved matrix-free with
//! Jacobi-preconditioned conjugate gradients.

use std::fmt;

use crate::field::TemperatureField;
use crate::stack::{Boundary, LayerStack};

/// Solver parameters.
///
/// Marked `#[non_exhaustive]`: construct with [`SolverConfig::default`] or
/// [`SolverConfig::builder`] so new knobs can be added without breaking
/// downstream callers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SolverConfig {
    /// Cells along the die width.
    pub nx: usize,
    /// Cells along the die height.
    pub ny: usize,
    /// Maximum CG iterations.
    pub max_iters: usize,
    /// Relative residual tolerance.
    pub tolerance: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            nx: 40,
            ny: 34,
            max_iters: 20_000,
            tolerance: 1e-10,
        }
    }
}

impl SolverConfig {
    /// Starts a builder seeded with the default configuration.
    #[must_use]
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder {
            cfg: SolverConfig::default(),
        }
    }

    /// Checks internal consistency. The lint pass `SL042` and the builder's
    /// [`SolverConfigBuilder::build`] both delegate here.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SolverConfigError> {
        if self.nx == 0 || self.ny == 0 {
            return Err(SolverConfigError::new(
                "grid must have at least one cell in each direction",
            ));
        }
        if self.max_iters == 0 {
            return Err(SolverConfigError::new(
                "solver must be allowed at least one iteration",
            ));
        }
        if self.tolerance.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SolverConfigError::new(
                "residual tolerance must be positive and not NaN",
            ));
        }
        Ok(())
    }
}

/// A solver-configuration validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfigError {
    message: &'static str,
}

impl SolverConfigError {
    fn new(message: &'static str) -> Self {
        SolverConfigError { message }
    }
}

impl fmt::Display for SolverConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid solver configuration: {}", self.message)
    }
}

impl std::error::Error for SolverConfigError {}

/// Builder for [`SolverConfig`].
#[derive(Debug, Clone)]
pub struct SolverConfigBuilder {
    cfg: SolverConfig,
}

impl SolverConfigBuilder {
    /// Cells along the die width.
    #[must_use]
    pub fn nx(mut self, nx: usize) -> Self {
        self.cfg.nx = nx;
        self
    }

    /// Cells along the die height.
    #[must_use]
    pub fn ny(mut self, ny: usize) -> Self {
        self.cfg.ny = ny;
        self
    }

    /// Maximum CG iterations.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.cfg.max_iters = max_iters;
        self
    }

    /// Relative residual tolerance.
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.cfg.tolerance = tolerance;
        self
    }

    /// Finishes the configuration, validating it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SolverConfig::validate`]). Use [`Self::try_build`] to handle the
    /// error instead.
    #[must_use]
    pub fn build(self) -> SolverConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finishes the configuration, returning the first constraint violation
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation reported by [`SolverConfig::validate`].
    pub fn try_build(self) -> Result<SolverConfig, SolverConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Solver failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The stack has no layers.
    EmptyStack,
    /// An active layer's power-map die size differs from the stack's.
    PowerMapMismatch {
        /// Offending layer name.
        layer: String,
    },
    /// CG did not reach the tolerance.
    NoConvergence {
        /// Iterations performed.
        iters: usize,
        /// Final relative residual.
        residual: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::EmptyStack => write!(f, "thermal stack has no layers"),
            SolveError::PowerMapMismatch { layer } => {
                write!(
                    f,
                    "power map of layer '{layer}' does not match the stack footprint"
                )
            }
            SolveError::NoConvergence { iters, residual } => {
                write!(
                    f,
                    "CG did not converge after {iters} iterations (residual {residual:.2e})"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Convergence statistics of one (or several accumulated) CG solves.
///
/// The experiment harness records these per run: a memoized artifact is
/// served with zero iterations, which is how telemetry proves a cache hit
/// did no solver work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Number of CG solves accumulated.
    pub solves: usize,
    /// Total CG iterations across those solves.
    pub iterations: usize,
    /// Worst (largest) final relative residual observed.
    pub residual: f64,
}

impl SolveStats {
    /// Folds another solve's statistics into this accumulator.
    pub fn absorb(&mut self, other: SolveStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.residual = self.residual.max(other.residual);
    }
}

/// A solved steady-state field together with its convergence statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The temperature field.
    pub field: TemperatureField,
    /// CG convergence statistics for this solve.
    pub stats: SolveStats,
}

/// One point of a transient solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientPoint {
    /// Time in seconds since the start of the integration.
    pub time_s: f64,
    /// Peak stack temperature at that time, °C.
    pub peak_c: f64,
}

/// The assembled finite-volume system for one stack/boundary/grid triple.
/// Build once with [`System::assemble`], then run [`System::steady`] or
/// [`System::transient`].
#[derive(Debug, Clone)]
pub struct System {
    nx: usize,
    ny: usize,
    nl: usize,
    gx: Vec<f64>,
    gy: Vec<f64>,
    gz: Vec<f64>,
    g_top: f64,
    g_bot: f64,
    diag: Vec<f64>,
    rhs: Vec<f64>,
    /// Thermal mass per cell of each layer (J/K).
    mass: Vec<f64>,
    names: Vec<String>,
    ambient: f64,
    cfg: SolverConfig,
}

impl System {
    /// Assembles conductances, sources and boundary couplings.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::EmptyStack`] or
    /// [`SolveError::PowerMapMismatch`].
    pub fn assemble(
        stack: &LayerStack,
        bc: Boundary,
        cfg: SolverConfig,
    ) -> Result<System, SolveError> {
        let layers = stack.layers();
        if layers.is_empty() {
            return Err(SolveError::EmptyStack);
        }
        let nl = layers.len();
        let (nx, ny) = (cfg.nx, cfg.ny);
        let nxy = nx * ny;
        let n = nl * nxy;

        let (die_w_mm, die_h_mm) = stack.die_dims_mm();
        let dx = die_w_mm * 1e-3 / nx as f64;
        let dy = die_h_mm * 1e-3 / ny as f64;
        let cell_area = dx * dy;

        let mut gx = vec![0.0f64; nl];
        let mut gy = vec![0.0f64; nl];
        let mut gz = vec![0.0f64; nl.saturating_sub(1)];
        let mut mass = vec![0.0f64; nl];
        for (l, layer) in layers.iter().enumerate() {
            gx[l] = layer.lateral_conductivity() * layer.thickness() * dy / dx;
            gy[l] = layer.lateral_conductivity() * layer.thickness() * dx / dy;
            mass[l] = layer.heat_capacity() * layer.thickness() * cell_area;
            if l + 1 < nl {
                let a = layer.thickness() / (2.0 * layer.conductivity());
                let b = layers[l + 1].thickness() / (2.0 * layers[l + 1].conductivity());
                gz[l] = cell_area / (a + b);
            }
        }
        let g_top =
            cell_area / (layers[0].thickness() / (2.0 * layers[0].conductivity()) + 1.0 / bc.h_top);
        let last = nl - 1;
        let g_bot = cell_area
            / (layers[last].thickness() / (2.0 * layers[last].conductivity()) + 1.0 / bc.h_bottom);

        let mut rhs = vec![0.0f64; n];
        for (l, layer) in layers.iter().enumerate() {
            if let Some(p) = layer.power() {
                let (pw, ph) = p.die_dims();
                if (pw - die_w_mm).abs() > 1e-6 || (ph - die_h_mm).abs() > 1e-6 {
                    return Err(SolveError::PowerMapMismatch {
                        layer: layer.name().to_string(),
                    });
                }
                let grid = p.resampled(nx, ny);
                for j in 0..ny {
                    for i in 0..nx {
                        rhs[l * nxy + j * nx + i] += grid.get(i, j);
                    }
                }
            }
        }
        for u in 0..nxy {
            rhs[u] += g_top * bc.ambient;
            rhs[last * nxy + u] += g_bot * bc.ambient;
        }

        let mut diag = vec![0.0f64; n];
        for l in 0..nl {
            for j in 0..ny {
                for i in 0..nx {
                    let u = l * nxy + j * nx + i;
                    let mut d = 0.0;
                    if i > 0 {
                        d += gx[l];
                    }
                    if i + 1 < nx {
                        d += gx[l];
                    }
                    if j > 0 {
                        d += gy[l];
                    }
                    if j + 1 < ny {
                        d += gy[l];
                    }
                    if l > 0 {
                        d += gz[l - 1];
                    }
                    if l + 1 < nl {
                        d += gz[l];
                    }
                    if l == 0 {
                        d += g_top;
                    }
                    if l == last {
                        d += g_bot;
                    }
                    diag[u] = d;
                }
            }
        }

        Ok(System {
            nx,
            ny,
            nl,
            gx,
            gy,
            gz,
            g_top,
            g_bot,
            diag,
            rhs,
            mass,
            names: layers.iter().map(|l| l.name().to_string()).collect(),
            ambient: bc.ambient,
            cfg,
        })
    }

    fn nxy(&self) -> usize {
        self.nx * self.ny
    }

    /// Per-cell boundary conductances `(heat-sink face, motherboard face)`
    /// in W/K — useful for external energy-balance checks.
    pub fn boundary_conductances(&self) -> (f64, f64) {
        (self.g_top, self.g_bot)
    }

    /// Applies `(A + shift·M) x` where `A` is the conduction operator and
    /// `M` the diagonal mass matrix (shift = 0 for steady state).
    fn apply(&self, shift: f64, x: &[f64], out: &mut [f64]) {
        let (nx, ny, nl) = (self.nx, self.ny, self.nl);
        let nxy = self.nxy();
        for l in 0..nl {
            let extra = shift * self.mass[l];
            for j in 0..ny {
                for i in 0..nx {
                    let u = l * nxy + j * nx + i;
                    let mut acc = (self.diag[u] + extra) * x[u];
                    if i > 0 {
                        acc -= self.gx[l] * x[u - 1];
                    }
                    if i + 1 < nx {
                        acc -= self.gx[l] * x[u + 1];
                    }
                    if j > 0 {
                        acc -= self.gy[l] * x[u - nx];
                    }
                    if j + 1 < ny {
                        acc -= self.gy[l] * x[u + nx];
                    }
                    if l > 0 {
                        acc -= self.gz[l - 1] * x[u - nxy];
                    }
                    if l + 1 < nl {
                        acc -= self.gz[l] * x[u + nxy];
                    }
                    out[u] = acc;
                }
            }
        }
    }

    /// Jacobi-preconditioned CG for `(A + shift·M) x = b`, warm-started at
    /// `x0`. On success also returns the iteration count and final
    /// relative residual.
    fn cg(
        &self,
        shift: f64,
        b: &[f64],
        mut x: Vec<f64>,
    ) -> Result<(Vec<f64>, SolveStats), SolveError> {
        let n = x.len();
        let mut r = vec![0.0f64; n];
        let mut ax = vec![0.0f64; n];
        self.apply(shift, &x, &mut ax);
        for u in 0..n {
            r[u] = b[u] - ax[u];
        }
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        let nxy = self.nxy();
        let pre = |u: usize| self.diag[u] + shift * self.mass[u / nxy];
        let mut z: Vec<f64> = (0..n).map(|u| r[u] / pre(u)).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0f64; n];
        for iter in 0..self.cfg.max_iters {
            let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rnorm / bnorm < self.cfg.tolerance {
                let stats = SolveStats {
                    solves: 1,
                    iterations: iter,
                    residual: rnorm / bnorm,
                };
                return Ok((x, stats));
            }
            self.apply(shift, &p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            let alpha = rz / pap;
            for u in 0..n {
                x[u] += alpha * p[u];
                r[u] -= alpha * ap[u];
            }
            for (u, zv) in z.iter_mut().enumerate() {
                *zv = r[u] / pre(u);
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for u in 0..n {
                p[u] = z[u] + beta * p[u];
            }
        }
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        Err(SolveError::NoConvergence {
            iters: self.cfg.max_iters,
            residual: rnorm / bnorm,
        })
    }

    fn field(&self, t: Vec<f64>) -> TemperatureField {
        TemperatureField::new(self.nx, self.ny, self.names.clone(), t)
    }

    /// Solves the steady-state problem.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if CG stalls.
    pub fn steady(&self) -> Result<TemperatureField, SolveError> {
        Ok(self.steady_with_stats()?.field)
    }

    /// Solves the steady-state problem, also reporting CG convergence
    /// statistics (iteration count, final relative residual).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if CG stalls.
    pub fn steady_with_stats(&self) -> Result<Solution, SolveError> {
        let x0 = vec![self.ambient; self.rhs.len()];
        let (t, stats) = self.cg(0.0, &self.rhs, x0)?;
        Ok(Solution {
            field: self.field(t),
            stats,
        })
    }

    /// Integrates the transient problem with implicit Euler from a uniform
    /// start at `start_c`, taking `steps` steps of `dt_s` seconds. Returns
    /// the peak-temperature trajectory and the final field.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if any step's CG stalls.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive or `steps` is zero.
    pub fn transient(
        &self,
        start_c: f64,
        dt_s: f64,
        steps: usize,
    ) -> Result<(Vec<TransientPoint>, TemperatureField), SolveError> {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(steps > 0, "need at least one step");
        let n = self.rhs.len();
        let nxy = self.nxy();
        let shift = 1.0 / dt_s;
        let mut t = vec![start_c; n];
        let mut trajectory = Vec::with_capacity(steps);
        for step in 1..=steps {
            // (A + M/dt) T_new = b + (M/dt) T_old
            let mut b = self.rhs.clone();
            for u in 0..n {
                b[u] += shift * self.mass[u / nxy] * t[u];
            }
            t = self.cg(shift, &b, t)?.0;
            let peak = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            trajectory.push(TransientPoint {
                time_s: step as f64 * dt_s,
                peak_c: peak,
            });
        }
        Ok((trajectory, self.field(t)))
    }
}

/// Solves the stack for its steady-state temperature field (convenience
/// wrapper around [`System::assemble`] + [`System::steady`]).
///
/// # Errors
///
/// Returns [`SolveError`] if the stack is empty, a power map's die size
/// disagrees with the stack footprint, or CG fails to converge.
pub fn solve(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<TemperatureField, SolveError> {
    System::assemble(stack, bc, cfg)?.steady()
}

/// Like [`solve`], but also reports CG convergence statistics — the
/// experiment harness uses this to attribute solver work to each run.
///
/// # Errors
///
/// Returns [`SolveError`] under the same conditions as [`solve`].
pub fn solve_with_stats(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<Solution, SolveError> {
    System::assemble(stack, bc, cfg)?.steady_with_stats()
}

/// Integrates the stack's transient response from a uniform ambient start
/// (e.g. power-on) — the time-dependent form of Eq. (1).
///
/// # Errors
///
/// Propagates assembly and CG failures.
pub fn solve_transient(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
    dt_s: f64,
    steps: usize,
) -> Result<(Vec<TransientPoint>, TemperatureField), SolveError> {
    System::assemble(stack, bc, cfg)?.transient(bc.ambient, dt_s, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Layer;
    use stacksim_floorplan::PowerGrid;

    #[test]
    fn builder_accepts_valid_config() {
        let cfg = SolverConfig::builder().nx(8).ny(8).build();
        assert_eq!((cfg.nx, cfg.ny), (8, 8));
    }

    #[test]
    fn zero_grid_rejected() {
        let err = SolverConfig::builder().nx(0).try_build();
        assert!(err.unwrap_err().to_string().contains("grid"));
        assert!(SolverConfig::builder().ny(0).try_build().is_err());
    }

    #[test]
    fn zero_iterations_rejected() {
        assert!(SolverConfig::builder().max_iters(0).try_build().is_err());
    }

    #[test]
    fn bad_tolerance_rejected() {
        assert!(SolverConfig::builder().tolerance(0.0).try_build().is_err());
        assert!(SolverConfig::builder().tolerance(-1.0).try_build().is_err());
        assert!(SolverConfig::builder()
            .tolerance(f64::NAN)
            .try_build()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid solver configuration")]
    fn build_panics_on_invalid() {
        let _ = SolverConfig::builder().max_iters(0).build();
    }

    fn uniform_power(nx: usize, ny: usize, w: f64) -> PowerGrid {
        let mut g = PowerGrid::zero(nx, ny, 10.0, 10.0);
        let per = w / (nx * ny) as f64;
        for j in 0..ny {
            for i in 0..nx {
                g.add(i, j, per);
            }
        }
        g
    }

    /// One uniform slab with uniform power: compare against the closed-form
    /// 1-D solution `T = Tamb + q'' * (1/h + t/(2k))` at the source plane.
    #[test]
    fn matches_one_dimensional_analytic_solution() {
        let area_m2 = 0.01 * 0.01; // 10 mm x 10 mm
        let power = 50.0;
        let q = power / area_m2; // W/m²

        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::active(
            "slab",
            1e-3,
            100.0,
            uniform_power(4, 4, power),
        ));
        let bc = Boundary {
            h_top: 5000.0,
            h_bottom: 1e-9,
            ambient: 40.0,
        };
        let f = solve(
            &stack,
            bc,
            SolverConfig {
                nx: 4,
                ny: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let expected = 40.0 + q * (1.0 / 5000.0 + 1e-3 / (2.0 * 100.0));
        let got = f.layer_peak(0);
        assert!(
            (got - expected).abs() < 0.5,
            "expected ~{expected:.2} C, got {got:.2} C"
        );
        assert!((f.layer_peak(0) - f.layer_min(0)).abs() < 1e-6);
    }

    /// Energy conservation: boundary flux equals injected power.
    #[test]
    fn conserves_energy() {
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::passive("lid", 2e-3, 50.0));
        stack.push(Layer::active("die", 1e-3, 100.0, uniform_power(6, 6, 30.0)));
        stack.push(Layer::passive("base", 2e-3, 1.0));
        let bc = Boundary {
            h_top: 3000.0,
            h_bottom: 20.0,
            ambient: 40.0,
        };
        let cfg = SolverConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        };
        let f = solve(&stack, bc, cfg).unwrap();
        let dx = 0.01 / 6.0;
        let a = dx * dx;
        let g_top = a / (2e-3 / (2.0 * 50.0) + 1.0 / 3000.0);
        let g_bot = a / (2e-3 / (2.0 * 1.0) + 1.0 / 20.0);
        let top: f64 = f.layer(0).iter().map(|t| g_top * (t - 40.0)).sum();
        let bottom: f64 = f.layer(2).iter().map(|t| g_bot * (t - 40.0)).sum();
        let out = top + bottom;
        assert!((out - 30.0).abs() < 0.01, "flux out {out:.4} W vs 30 W in");
    }

    /// Maximum principle: with a single heat source, the temperature is
    /// bounded by ambient from below and decreases away from the source.
    #[test]
    fn respects_maximum_principle() {
        let mut g = PowerGrid::zero(9, 9, 10.0, 10.0);
        g.add(4, 4, 20.0);
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::active("die", 0.5e-3, 120.0, g));
        stack.push(Layer::passive("spreader", 2e-3, 200.0));
        let bc = Boundary {
            h_top: 1e-9,
            h_bottom: 2000.0,
            ambient: 40.0,
        };
        let f = solve(
            &stack,
            bc,
            SolverConfig {
                nx: 9,
                ny: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(f.min() >= 40.0 - 1e-6, "nothing below ambient: {}", f.min());
        let die = f.layer(0);
        let centre = die[4 * 9 + 4];
        let corner = die[0];
        assert!(
            centre > corner + 0.5,
            "hotspot at the source: {centre} vs {corner}"
        );
    }

    #[test]
    fn empty_stack_is_an_error() {
        let stack = LayerStack::new(10.0, 10.0);
        assert_eq!(
            solve(&stack, Boundary::default(), SolverConfig::default()),
            Err(SolveError::EmptyStack)
        );
    }

    #[test]
    fn mismatched_power_map_is_an_error() {
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::active(
            "die",
            1e-3,
            100.0,
            PowerGrid::zero(4, 4, 5.0, 5.0),
        ));
        assert!(matches!(
            solve(&stack, Boundary::default(), SolverConfig::default()),
            Err(SolveError::PowerMapMismatch { .. })
        ));
    }

    /// A hotter boundary coefficient cools the stack monotonically.
    #[test]
    fn better_cooling_lowers_peak() {
        let mk = |h: f64| {
            let mut stack = LayerStack::new(10.0, 10.0);
            stack.push(Layer::active("die", 1e-3, 100.0, uniform_power(4, 4, 40.0)));
            let bc = Boundary {
                h_top: h,
                h_bottom: 10.0,
                ambient: 40.0,
            };
            solve(
                &stack,
                bc,
                SolverConfig {
                    nx: 4,
                    ny: 4,
                    ..Default::default()
                },
            )
            .unwrap()
            .peak()
        };
        let weak = mk(1000.0);
        let strong = mk(20_000.0);
        assert!(strong < weak, "{strong} < {weak}");
    }

    fn transient_stack() -> (LayerStack, Boundary, SolverConfig) {
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::passive("lid", 2e-3, 100.0));
        stack.push(Layer::active("die", 1e-3, 120.0, uniform_power(4, 4, 40.0)));
        let bc = Boundary {
            h_top: 4000.0,
            h_bottom: 10.0,
            ambient: 40.0,
        };
        let cfg = SolverConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        };
        (stack, bc, cfg)
    }

    /// Power-on heating is monotone and converges to the steady state.
    #[test]
    fn transient_converges_to_steady_state() {
        let (stack, bc, cfg) = transient_stack();
        let steady = solve(&stack, bc, cfg).unwrap().peak();
        let (traj, final_field) = solve_transient(&stack, bc, cfg, 0.05, 500).unwrap();
        for w in traj.windows(2) {
            assert!(w[1].peak_c >= w[0].peak_c - 1e-9, "monotone heating");
        }
        let last = traj.last().unwrap().peak_c;
        assert!(
            (last - steady).abs() < 0.1,
            "transient end {last:.3} vs steady {steady:.3}"
        );
        assert!((final_field.peak() - last).abs() < 1e-9);
    }

    /// The first transient step starts near ambient — thermal mass delays
    /// heating (the reason peak temperature is a steady-state, worst-case
    /// metric).
    #[test]
    fn transient_starts_cold() {
        let (stack, bc, cfg) = transient_stack();
        let steady = solve(&stack, bc, cfg).unwrap().peak();
        let (traj, _) = solve_transient(&stack, bc, cfg, 1e-4, 3).unwrap();
        assert!(
            traj[0].peak_c < 40.0 + 0.5 * (steady - 40.0),
            "after 0.1 ms the die is still far from steady: {:.2} vs {steady:.2}",
            traj[0].peak_c
        );
    }

    /// Doubling every layer's heat capacity roughly doubles the time to
    /// reach a given temperature (RC scaling).
    #[test]
    fn thermal_mass_sets_the_time_constant() {
        let (stack, bc, cfg) = transient_stack();
        let heavy = {
            let mut s = LayerStack::new(10.0, 10.0);
            for l in stack.layers() {
                s.push(l.with_heat_capacity(l.heat_capacity() * 2.0));
            }
            s
        };
        let target = 45.0;
        let time_to = |s: &LayerStack| {
            let (traj, _) = solve_transient(s, bc, cfg, 0.01, 400).unwrap();
            traj.iter()
                .find(|p| p.peak_c >= target)
                .map(|p| p.time_s)
                .unwrap()
        };
        let fast = time_to(&stack);
        let slow = time_to(&heavy);
        let ratio = slow / fast;
        assert!(ratio > 1.5 && ratio < 2.6, "RC scaling ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_panics() {
        let (stack, bc, cfg) = transient_stack();
        let _ = solve_transient(&stack, bc, cfg, 0.0, 10);
    }
}
