//! Steady-state and transient 3-D finite-volume conduction solvers.
//!
//! Discretises Eq. (1) of the paper (`ρc ∂T/∂t = ∇·(K∇T) + Q`) on a
//! structured grid — one cell layer per material layer, `nx × ny` cells in
//! plane — with the Robin boundary condition of Eq. (2) at the heat-sink
//! and motherboard faces. The steady solver drops the time term; the
//! transient solver integrates it with implicit Euler. Both reduce to
//! symmetric positive-definite systems solved matrix-free with
//! preconditioned conjugate gradients.
//!
//! # Kernel layout
//!
//! The hot loop is the 7-point stencil in [`stencil_row`]: one x-row per
//! call, west/east terms fused into `gx·(xr[i−1]+xr[i+1])`, boundary
//! columns peeled out of the interior loop. Absent north/south/above/below
//! neighbours are handled without branches by passing a zero coefficient
//! together with an aliased row, so the interior loop body is identical
//! for every cell and vectorisable. The CG vector passes are fused:
//! the axpy pair (`x += αp`, `r -= αap`) also accumulates `‖r‖²`, and the
//! Jacobi precondition pass also accumulates `r·z`, so the residual norm
//! is never recomputed from scratch.
//!
//! # Determinism contract
//!
//! With `SolverConfig::threads > 1` each solve spawns its workers **once**
//! on scoped threads ([`std::thread::scope`] — no dependencies) and drives
//! them through the CG phases with a spin barrier (per-phase spawning
//! costs more than a phase's arithmetic at these grid sizes). Work is
//! partitioned into fixed contiguous layer slabs (plane rows for the
//! line-z phases). Every reduction is accumulated into fixed per-layer
//! (per-row) partials in index order and folded in layer (row) order on
//! worker 0. The partition only decides *who* computes a partial, never
//! how it is rounded, so results are **bit-identical for any thread
//! count** — the same contract as the harness's parallel==serial test.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::field::TemperatureField;
use crate::pool::{SharedSlice, SpinBarrier};
use crate::stack::{Boundary, LayerStack};

/// Hard upper bound on [`SolverConfig::threads`], shared with the `SL043`
/// lint pass.
pub const MAX_SOLVER_THREADS: usize = 512;

/// Preconditioner choice for the CG solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preconditioner {
    /// Diagonal (Jacobi) scaling — one multiply per cell per iteration.
    #[default]
    Jacobi,
    /// Exact solve of each (i, j) cell column's vertical tridiagonal via a
    /// precomputed Thomas factorisation. The vertical coupling `gz ≈ k·A/t`
    /// dwarfs the lateral terms `gx, gy ≈ k·t·Δy/Δx` in a thin stack
    /// (`t` is sub-millimetre while the cell area `A` spans the die), so
    /// solving the z-direction exactly cuts CG iterations several-fold.
    LineZ,
}

impl Preconditioner {
    /// Stable lowercase label, used by digests, CLI output and bench files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Preconditioner::Jacobi => "jacobi",
            Preconditioner::LineZ => "line-z",
        }
    }
}

/// Solver parameters.
///
/// Marked `#[non_exhaustive]`: construct with [`SolverConfig::default`] or
/// [`SolverConfig::builder`] so new knobs can be added without breaking
/// downstream callers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SolverConfig {
    /// Cells along the die width.
    pub nx: usize,
    /// Cells along the die height.
    pub ny: usize,
    /// Maximum CG iterations.
    pub max_iters: usize,
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Worker threads for the stencil and vector phases. Purely an
    /// execution knob: results are bit-identical for any value (see the
    /// module-level determinism contract), so digests must not include it.
    pub threads: usize,
    /// Preconditioner choice. Changes the iteration path (and therefore
    /// rounding), not the converged answer beyond the tolerance.
    pub preconditioner: Preconditioner,
    /// Whether sweep drivers may warm-start consecutive solves from the
    /// previous field. Like `threads`, an execution knob within the
    /// solver tolerance; the resilience ladder's last rung clears it to
    /// rule the warm-start path out of a non-convergence.
    pub warm_start: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            nx: 40,
            ny: 34,
            max_iters: 20_000,
            tolerance: 1e-10,
            threads: 1,
            preconditioner: Preconditioner::Jacobi,
            warm_start: true,
        }
    }
}

impl SolverConfig {
    /// Starts a builder seeded with the default configuration.
    #[must_use]
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder {
            cfg: SolverConfig::default(),
        }
    }

    /// Checks internal consistency. The lint passes `SL042`/`SL043` and the
    /// builder's [`SolverConfigBuilder::build`] both delegate here.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SolverConfigError> {
        if self.nx == 0 || self.ny == 0 {
            return Err(SolverConfigError::new(
                "grid must have at least one cell in each direction",
            ));
        }
        if self.max_iters == 0 {
            return Err(SolverConfigError::new(
                "solver must be allowed at least one iteration",
            ));
        }
        if self.tolerance.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SolverConfigError::new(
                "residual tolerance must be positive and not NaN",
            ));
        }
        if self.threads == 0 || self.threads > MAX_SOLVER_THREADS {
            return Err(SolverConfigError::new(
                "solver threads must be between 1 and 512",
            ));
        }
        Ok(())
    }
}

/// A solver-configuration validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfigError {
    message: &'static str,
}

impl SolverConfigError {
    fn new(message: &'static str) -> Self {
        SolverConfigError { message }
    }
}

impl fmt::Display for SolverConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid solver configuration: {}", self.message)
    }
}

impl std::error::Error for SolverConfigError {}

/// Builder for [`SolverConfig`].
#[derive(Debug, Clone)]
pub struct SolverConfigBuilder {
    cfg: SolverConfig,
}

impl SolverConfigBuilder {
    /// Cells along the die width.
    #[must_use]
    pub fn nx(mut self, nx: usize) -> Self {
        self.cfg.nx = nx;
        self
    }

    /// Cells along the die height.
    #[must_use]
    pub fn ny(mut self, ny: usize) -> Self {
        self.cfg.ny = ny;
        self
    }

    /// Maximum CG iterations.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.cfg.max_iters = max_iters;
        self
    }

    /// Relative residual tolerance.
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.cfg.tolerance = tolerance;
        self
    }

    /// Worker threads for the stencil and vector phases (results are
    /// bit-identical for any value).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Preconditioner choice.
    #[must_use]
    pub fn preconditioner(mut self, preconditioner: Preconditioner) -> Self {
        self.cfg.preconditioner = preconditioner;
        self
    }

    /// Whether sweep drivers may warm-start from the previous solution
    /// (on by default; results stay within the solver tolerance either
    /// way).
    #[must_use]
    pub fn warm_start(mut self, warm_start: bool) -> Self {
        self.cfg.warm_start = warm_start;
        self
    }

    /// Finishes the configuration, validating it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SolverConfig::validate`]). Use [`Self::try_build`] to handle the
    /// error instead.
    #[must_use]
    pub fn build(self) -> SolverConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finishes the configuration, returning the first constraint violation
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation reported by [`SolverConfig::validate`].
    pub fn try_build(self) -> Result<SolverConfig, SolverConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Solver failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The stack has no layers.
    EmptyStack,
    /// An active layer's power-map die size differs from the stack's.
    PowerMapMismatch {
        /// Offending layer name.
        layer: String,
    },
    /// CG did not reach the tolerance.
    NoConvergence {
        /// Iterations performed.
        iters: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// A conductivity sweep named a layer the stack does not have.
    UnknownLayer {
        /// The requested layer name.
        name: String,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::EmptyStack => write!(f, "thermal stack has no layers"),
            SolveError::PowerMapMismatch { layer } => {
                write!(
                    f,
                    "power map of layer '{layer}' does not match the stack footprint"
                )
            }
            SolveError::NoConvergence { iters, residual } => {
                write!(
                    f,
                    "CG did not converge after {iters} iterations (residual {residual:.2e})"
                )
            }
            SolveError::UnknownLayer { name } => {
                write!(f, "no layer named '{name}' in the stack")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Convergence statistics of one (or several accumulated) CG solves.
///
/// The experiment harness records these per run: a memoized artifact is
/// served with zero iterations, which is how telemetry proves a cache hit
/// did no solver work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Number of CG solves accumulated.
    pub solves: usize,
    /// Total CG iterations across those solves.
    pub iterations: usize,
    /// Worst (largest) final relative residual observed.
    pub residual: f64,
}

impl SolveStats {
    /// Folds another solve's statistics into this accumulator.
    pub fn absorb(&mut self, other: SolveStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.residual = self.residual.max(other.residual);
    }
}

/// A solved steady-state field together with its convergence statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The temperature field.
    pub field: TemperatureField,
    /// CG convergence statistics for this solve.
    pub stats: SolveStats,
}

/// One point of a transient solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientPoint {
    /// Time in seconds since the start of the integration.
    pub time_s: f64,
    /// Peak stack temperature at that time, °C.
    pub peak_c: f64,
}

/// One x-row of the 7-point stencil:
/// `out = (d + extra)·xr − gx·(west + east) − gyn·xn − gys·xs − gzu·xu − gzd·xd`,
/// with the west/east terms peeled at the row ends. Absent neighbours are
/// passed with a **zero coefficient and an aliased row**, which keeps the
/// interior loop body branch-free and identical for every cell. The
/// diagonal is two scalars — `de` for the row's end cells, `dm` for its
/// interior — because within a layer the assembled diagonal only varies
/// with the cell's neighbour-count class (see [`row_cls`]); not streaming
/// a per-cell diagonal array saves a full vector read per apply.
#[allow(clippy::too_many_arguments)]
#[inline]
fn stencil_row(
    out: &mut [f64],
    de: f64,
    dm: f64,
    extra: f64,
    gx: f64,
    xr: &[f64],
    gyn: f64,
    xn: &[f64],
    gys: f64,
    xs: &[f64],
    gzu: f64,
    xu: &[f64],
    gzd: f64,
    xd: &[f64],
) {
    let nx = out.len();
    // Pin every slice to the same length so the bounds checks hoist out of
    // the interior loop and it autovectorizes.
    let xr = &xr[..nx];
    let (xn, xs) = (&xn[..nx], &xs[..nx]);
    let (xu, xd) = (&xu[..nx], &xd[..nx]);
    if nx == 1 {
        out[0] = (de + extra) * xr[0] - gyn * xn[0] - gys * xs[0] - gzu * xu[0] - gzd * xd[0];
        return;
    }
    out[0] =
        (de + extra) * xr[0] - gx * xr[1] - gyn * xn[0] - gys * xs[0] - gzu * xu[0] - gzd * xd[0];
    for i in 1..nx - 1 {
        out[i] = (dm + extra) * xr[i]
            - gx * (xr[i - 1] + xr[i + 1])
            - gyn * xn[i]
            - gys * xs[i]
            - gzu * xu[i]
            - gzd * xd[i];
    }
    let e = nx - 1;
    out[e] = (de + extra) * xr[e]
        - gx * xr[e - 1]
        - gyn * xn[e]
        - gys * xs[e]
        - gzu * xu[e]
        - gzd * xd[e];
}

/// Looks up a per-row coefficient pair `(end, mid)` in a per-layer class
/// table.
///
/// The assembled diagonal (and everything factored from it) takes at most
/// nine distinct values per layer — one per (x-neighbour-count,
/// y-neighbour-count) class — because each layer's material is uniform.
/// The solver therefore stores those values in `nl × 3` tables indexed by
/// `layer · 3 + y-class` with the three x-class values inline, and the hot
/// loops read two scalars per row instead of streaming `n`-element
/// coefficient arrays. The tables are built with the exact addition chains
/// the per-cell assembly uses, so the looked-up values are bit-identical
/// to the per-cell ones.
#[inline]
fn row_cls(t: &[[f64; 3]], l: usize, j: usize, ny: usize, nx: usize) -> (f64, f64) {
    let yn = if ny == 1 {
        0
    } else if j == 0 || j + 1 == ny {
        1
    } else {
        2
    };
    let c = &t[l * 3 + yn];
    (c[if nx == 1 { 0 } else { 1 }], c[2])
}

/// Dot product of one row, accumulated in four fixed lanes.
///
/// Every reduction in this module folds its rows through this function: a
/// single `s += a·b` chain keeps the whole surrounding loop scalar (LLVM
/// will not reassociate floats), while four independent lanes map onto one
/// vector accumulator and let the loop autovectorize. The lane assignment
/// (`i mod 4`), the `(l0+l1) + (l2+l3)` combine and the in-order scalar
/// tail are fixed functions of the row length, so the result is
/// deterministic and identical for the serial and threaded drivers.
#[inline]
fn dot_row(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let b = &b[..n];
    let mut l = [0.0f64; 4];
    for (qa, qb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        l[0] += qa[0] * qb[0];
        l[1] += qa[1] * qb[1];
        l[2] += qa[2] * qb[2];
        l[3] += qa[3] * qb[3];
    }
    let mut s = (l[0] + l[1]) + (l[2] + l[3]);
    for i in (n / 4) * 4..n {
        s += a[i] * b[i];
    }
    s
}

/// Contiguous slab bounds for each of `workers` workers over `total`
/// units — a fixed function of `(total, workers)` alone, so the partition
/// is deterministic.
fn slab_bounds(total: usize, workers: usize) -> Vec<(usize, usize)> {
    (0..workers)
        .map(|w| (total * w / workers, total * (w + 1) / workers))
        .collect()
}

/// Worker count actually used for a solve: the configured thread count,
/// clamped to the partitionable units (layers, plane rows) *and* to the
/// hardware parallelism — CG phases are lockstep, so running more spinning
/// workers than cores only adds scheduler churn. The clamp never changes
/// results (bit-identity across worker counts is the module's contract),
/// only how many threads compute them.
fn effective_workers(threads: usize, nl: usize, ny: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    threads.min(nl).min(ny).min(cores).max(1)
}

/// In-place `r ← b − r` (where `r` holds `A·x` on entry) with per-row
/// (`nx`-chunk) `‖b‖²` and `‖r‖²` partials.
///
/// All reduction partials in this module are **per plane row**, not per
/// layer, and every row folds through [`dot_row`]'s four lanes: short
/// independent chains vectorize and let the CPU overlap their FP-add
/// latency, where a per-layer chain of `nx·ny` dependent adds would
/// serialise at ~4 cycles each and dominate the whole iteration. The
/// chain boundaries are a fixed function of the grid, so results stay
/// bit-identical for any thread count.
fn residual_slab(b: &[f64], r: &mut [f64], ptb: &mut [f64], ptr2: &mut [f64], nx: usize) {
    for (ci, (bc, rc)) in b.chunks_exact(nx).zip(r.chunks_exact_mut(nx)).enumerate() {
        for i in 0..nx {
            rc[i] = bc[i] - rc[i];
        }
        ptb[ci] = dot_row(bc, bc);
        ptr2[ci] = dot_row(rc, rc);
    }
}

/// Fused CG update: `x += α·p`, `r −= α·ap`, per-row `‖r‖²` partials.
fn update_slab(
    alpha: f64,
    p: &[f64],
    ap: &[f64],
    x: &mut [f64],
    r: &mut [f64],
    pt: &mut [f64],
    nx: usize,
) {
    for (ci, (((pc, apc), xc), rc)) in p
        .chunks_exact(nx)
        .zip(ap.chunks_exact(nx))
        .zip(x.chunks_exact_mut(nx))
        .zip(r.chunks_exact_mut(nx))
        .enumerate()
    {
        for i in 0..nx {
            xc[i] += alpha * pc[i];
            rc[i] -= alpha * apc[i];
        }
        pt[ci] = dot_row(rc, rc);
    }
}

/// Fully fused Jacobi iteration tail: the update above **plus**
/// `z = inv·r` and per-row `r·z` partials, one pass over memory. The
/// reciprocal diagonal comes from the [`row_cls`] class table (`l0` is the
/// slab's first absolute layer), not a per-cell array.
#[allow(clippy::too_many_arguments)]
fn update_jacobi_slab(
    alpha: f64,
    p: &[f64],
    ap: &[f64],
    inv: &[[f64; 3]],
    l0: usize,
    ny: usize,
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    ptr2: &mut [f64],
    ptrz: &mut [f64],
    nx: usize,
) {
    #[inline(always)]
    fn cell(alpha: f64, iv: f64, p: f64, ap: f64, x: &mut f64, r: &mut f64, z: &mut f64) {
        *x += alpha * p;
        let rv = *r - alpha * ap;
        *r = rv;
        *z = rv * iv;
    }
    for (ci, ((((pc, apc), xc), rc), zc)) in p
        .chunks_exact(nx)
        .zip(ap.chunks_exact(nx))
        .zip(x.chunks_exact_mut(nx))
        .zip(r.chunks_exact_mut(nx))
        .zip(z.chunks_exact_mut(nx))
        .enumerate()
    {
        let (ie, im) = row_cls(inv, l0 + ci / ny, ci % ny, ny, nx);
        cell(alpha, ie, pc[0], apc[0], &mut xc[0], &mut rc[0], &mut zc[0]);
        for i in 1..nx.saturating_sub(1) {
            cell(alpha, im, pc[i], apc[i], &mut xc[i], &mut rc[i], &mut zc[i]);
        }
        let e = nx - 1;
        if e > 0 {
            cell(alpha, ie, pc[e], apc[e], &mut xc[e], &mut rc[e], &mut zc[e]);
        }
        ptr2[ci] = dot_row(rc, rc);
        ptrz[ci] = dot_row(rc, zc);
    }
}

/// Jacobi precondition: `z = inv·r` with per-row `r·z` partials, the
/// reciprocal diagonal looked up per row in the [`row_cls`] class table
/// (`l0` is the slab's first absolute layer).
fn jacobi_slab(
    inv: &[[f64; 3]],
    l0: usize,
    ny: usize,
    r: &[f64],
    z: &mut [f64],
    pt: &mut [f64],
    nx: usize,
) {
    for (ci, (rc, zc)) in r.chunks_exact(nx).zip(z.chunks_exact_mut(nx)).enumerate() {
        let (ie, im) = row_cls(inv, l0 + ci / ny, ci % ny, ny, nx);
        zc[0] = rc[0] * ie;
        for i in 1..nx.saturating_sub(1) {
            zc[i] = rc[i] * im;
        }
        let e = nx - 1;
        if e > 0 {
            zc[e] = rc[e] * ie;
        }
        pt[ci] = dot_row(rc, zc);
    }
}

/// Precomputed preconditioner factors for one `(system, shift)` pair.
/// Both variants are [`row_cls`] class tables (`nl × 3` entries of three
/// x-class values), not per-cell arrays: every cell of a neighbour-count
/// class shares its diagonal, so it shares its factorisation too, and the
/// tables stay resident in L1 while the per-cell arrays they replace cost
/// a vector read per pass.
enum Factors {
    /// Reciprocal of the (shifted) diagonal — the hoisted `1/pre(u)`.
    Jacobi { inv: Vec<[f64; 3]> },
    /// Thomas factorisation of the vertical tridiagonal of each cell
    /// class: `inv_w = 1/w_l` with `w_0 = d_0`,
    /// `w_l = d_l − gz[l−1]²/w_{l−1}`, and `cp = gz[l]·inv_w` for the
    /// back-substitution (`cp` is unused on the last layer).
    LineZ {
        inv_w: Vec<[f64; 3]>,
        cp: Vec<[f64; 3]>,
    },
}

/// Everything one CG worker needs, shared by copy. All slices alias
/// buffers owned by [`System::cg_mt`]'s stack frame, which outlives the
/// thread scope; disjointness of concurrent writes is guaranteed by the
/// fixed slab/row partitions and the barrier discipline (see
/// [`SharedSlice::range_mut`]).
#[derive(Clone, Copy)]
struct MtShared<'a> {
    shift: f64,
    b: &'a [f64],
    x: SharedSlice<'a>,
    r: SharedSlice<'a>,
    z: SharedSlice<'a>,
    p: SharedSlice<'a>,
    ap: SharedSlice<'a>,
    /// Per-row partials at `l·ny + j`: `‖b‖²` at init, `p·ap` / `‖r‖²` in
    /// the loop.
    pt_a: SharedSlice<'a>,
    /// Per-row partials at `l·ny + j`: `‖r‖²` at init, `r·z` in the Jacobi
    /// loop.
    pt_b: SharedSlice<'a>,
    /// Precondition partials: per `(row, layer)` at `j·nl + l` for line-z,
    /// per row at `l·ny + j` for Jacobi.
    pt_pre: SharedSlice<'a>,
    /// `[α, β]`, published by worker 0 between barriers.
    scal: SharedSlice<'a>,
    fac: &'a Factors,
    /// Fixed layer slab `(l0, l1)` per worker.
    layer_bounds: &'a [(usize, usize)],
    /// Fixed plane-row slab `(j0, j1)` per worker (line-z phases).
    row_bounds: &'a [(usize, usize)],
    barrier: &'a SpinBarrier,
    /// 0 = keep iterating, 1 = converged. Checked by every worker only
    /// after barriers that *all* workers cross, so barrier counts stay
    /// equal and nobody deadlocks.
    stop: &'a AtomicUsize,
}

/// The assembled finite-volume system for one stack/boundary/grid triple.
/// Build once with [`System::assemble`], then run [`System::steady`],
/// [`System::steady_from`] or [`System::transient`].
#[derive(Debug, Clone)]
pub struct System {
    nx: usize,
    ny: usize,
    nl: usize,
    gx: Vec<f64>,
    gy: Vec<f64>,
    gz: Vec<f64>,
    g_top: f64,
    g_bot: f64,
    diag: Vec<f64>,
    /// The diagonal's [`row_cls`] class table — what the hot loops read
    /// instead of `diag` (kept per-cell only for the frozen [`reference`]
    /// solver).
    dcls: Vec<[f64; 3]>,
    rhs: Vec<f64>,
    /// Thermal mass per cell of each layer (J/K).
    mass: Vec<f64>,
    names: Vec<String>,
    ambient: f64,
    cfg: SolverConfig,
}

impl System {
    /// Assembles conductances, sources and boundary couplings.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::EmptyStack`] or
    /// [`SolveError::PowerMapMismatch`].
    pub fn assemble(
        stack: &LayerStack,
        bc: Boundary,
        cfg: SolverConfig,
    ) -> Result<System, SolveError> {
        let layers = stack.layers();
        if layers.is_empty() {
            return Err(SolveError::EmptyStack);
        }
        let nl = layers.len();
        let (nx, ny) = (cfg.nx, cfg.ny);
        let nxy = nx * ny;
        let n = nl * nxy;

        let (die_w_mm, die_h_mm) = stack.die_dims_mm();
        let dx = die_w_mm * 1e-3 / nx as f64;
        let dy = die_h_mm * 1e-3 / ny as f64;
        let cell_area = dx * dy;

        let mut gx = vec![0.0f64; nl];
        let mut gy = vec![0.0f64; nl];
        let mut gz = vec![0.0f64; nl.saturating_sub(1)];
        let mut mass = vec![0.0f64; nl];
        for (l, layer) in layers.iter().enumerate() {
            gx[l] = layer.lateral_conductivity() * layer.thickness() * dy / dx;
            gy[l] = layer.lateral_conductivity() * layer.thickness() * dx / dy;
            mass[l] = layer.heat_capacity() * layer.thickness() * cell_area;
            if l + 1 < nl {
                let a = layer.thickness() / (2.0 * layer.conductivity());
                let b = layers[l + 1].thickness() / (2.0 * layers[l + 1].conductivity());
                gz[l] = cell_area / (a + b);
            }
        }
        let g_top =
            cell_area / (layers[0].thickness() / (2.0 * layers[0].conductivity()) + 1.0 / bc.h_top);
        let last = nl - 1;
        let g_bot = cell_area
            / (layers[last].thickness() / (2.0 * layers[last].conductivity()) + 1.0 / bc.h_bottom);

        let mut rhs = vec![0.0f64; n];
        for (l, layer) in layers.iter().enumerate() {
            if let Some(p) = layer.power() {
                let (pw, ph) = p.die_dims();
                if (pw - die_w_mm).abs() > 1e-6 || (ph - die_h_mm).abs() > 1e-6 {
                    return Err(SolveError::PowerMapMismatch {
                        layer: layer.name().to_string(),
                    });
                }
                let grid = p.resampled(nx, ny);
                for j in 0..ny {
                    for i in 0..nx {
                        rhs[l * nxy + j * nx + i] += grid.get(i, j);
                    }
                }
            }
        }
        for u in 0..nxy {
            rhs[u] += g_top * bc.ambient;
            rhs[last * nxy + u] += g_bot * bc.ambient;
        }

        let mut diag = vec![0.0f64; n];
        for l in 0..nl {
            for j in 0..ny {
                for i in 0..nx {
                    let u = l * nxy + j * nx + i;
                    let mut d = 0.0;
                    if i > 0 {
                        d += gx[l];
                    }
                    if i + 1 < nx {
                        d += gx[l];
                    }
                    if j > 0 {
                        d += gy[l];
                    }
                    if j + 1 < ny {
                        d += gy[l];
                    }
                    if l > 0 {
                        d += gz[l - 1];
                    }
                    if l + 1 < nl {
                        d += gz[l];
                    }
                    if l == 0 {
                        d += g_top;
                    }
                    if l == last {
                        d += g_bot;
                    }
                    diag[u] = d;
                }
            }
        }

        // The diagonal's class table (see `row_cls`): one entry per
        // (layer, y-neighbour-count) pair holding the three
        // x-neighbour-count values. Built with the same addition chain as
        // the per-cell loop above, so each entry is bit-identical to the
        // `diag` value of every cell in its class.
        let mut dcls = vec![[0.0f64; 3]; nl * 3];
        for l in 0..nl {
            for yn in 0..3 {
                for (xn, slot) in dcls[l * 3 + yn].iter_mut().enumerate() {
                    let mut d = 0.0;
                    for _ in 0..xn {
                        d += gx[l];
                    }
                    for _ in 0..yn {
                        d += gy[l];
                    }
                    if l > 0 {
                        d += gz[l - 1];
                    }
                    if l + 1 < nl {
                        d += gz[l];
                    }
                    if l == 0 {
                        d += g_top;
                    }
                    if l == last {
                        d += g_bot;
                    }
                    *slot = d;
                }
            }
        }

        Ok(System {
            nx,
            ny,
            nl,
            gx,
            gy,
            gz,
            g_top,
            g_bot,
            diag,
            dcls,
            rhs,
            mass,
            names: layers.iter().map(|l| l.name().to_string()).collect(),
            ambient: bc.ambient,
            cfg,
        })
    }

    fn nxy(&self) -> usize {
        self.nx * self.ny
    }

    /// Per-cell boundary conductances `(heat-sink face, motherboard face)`
    /// in W/K — useful for external energy-balance checks.
    pub fn boundary_conductances(&self) -> (f64, f64) {
        (self.g_top, self.g_bot)
    }

    /// Applies `(A + shift·M)` to `x`, writing the layers starting at `l0`
    /// into the (locally indexed) slab `out`.
    fn apply_slab(&self, shift: f64, x: &[f64], out: &mut [f64], l0: usize) {
        self.apply_slab_impl::<false>(shift, x, out, l0, &mut []);
    }

    /// [`System::apply_slab`] fused with the per-row `x·out` partials —
    /// CG's `p·ap` reduction folded while each stencil output row is still
    /// in cache (`pt` holds one partial per plane row of the slab, index
    /// order, the granularity every reduction here uses — see
    /// [`residual_slab`]).
    fn apply_dot_slab(&self, shift: f64, x: &[f64], out: &mut [f64], l0: usize, pt: &mut [f64]) {
        self.apply_slab_impl::<true>(shift, x, out, l0, pt);
    }

    fn apply_slab_impl<const DOT: bool>(
        &self,
        shift: f64,
        x: &[f64],
        out: &mut [f64],
        l0: usize,
        pt: &mut [f64],
    ) {
        let (nx, ny, nl) = (self.nx, self.ny, self.nl);
        let nxy = self.nxy();
        let layers = out.len() / nxy;
        for li in 0..layers {
            let l = l0 + li;
            let extra = shift * self.mass[l];
            let gx = self.gx[l];
            let gy = self.gy[l];
            let (gzu, du) = if l > 0 {
                (self.gz[l - 1], nxy)
            } else {
                (0.0, 0)
            };
            let (gzd, dd) = if l + 1 < nl {
                (self.gz[l], nxy)
            } else {
                (0.0, 0)
            };
            for j in 0..ny {
                let g = l * nxy + j * nx;
                let lb = li * nxy + j * nx;
                let (gyn, dn) = if j > 0 { (gy, nx) } else { (0.0, 0) };
                let (gys, ds) = if j + 1 < ny { (gy, nx) } else { (0.0, 0) };
                let (de, dm) = row_cls(&self.dcls, l, j, ny, nx);
                stencil_row(
                    &mut out[lb..lb + nx],
                    de,
                    dm,
                    extra,
                    gx,
                    &x[g..g + nx],
                    gyn,
                    &x[g - dn..g - dn + nx],
                    gys,
                    &x[g + ds..g + ds + nx],
                    gzu,
                    &x[g - du..g - du + nx],
                    gzd,
                    &x[g + dd..g + dd + nx],
                );
                if DOT {
                    pt[li * ny + j] = dot_row(&out[lb..lb + nx], &x[g..g + nx]);
                }
            }
        }
    }

    /// Builds the preconditioner factors for one `shift` — class tables
    /// mirroring [`System::dcls`], one factorisation per cell class.
    fn factorize(&self, shift: f64) -> Factors {
        match self.cfg.preconditioner {
            Preconditioner::Jacobi => {
                let inv = self
                    .dcls
                    .iter()
                    .enumerate()
                    .map(|(e, c)| {
                        let extra = shift * self.mass[e / 3];
                        [
                            1.0 / (c[0] + extra),
                            1.0 / (c[1] + extra),
                            1.0 / (c[2] + extra),
                        ]
                    })
                    .collect();
                Factors::Jacobi { inv }
            }
            Preconditioner::LineZ => {
                let mut inv_w = vec![[0.0f64; 3]; self.nl * 3];
                let mut cp = vec![[0.0f64; 3]; self.nl * 3];
                for yn in 0..3 {
                    for xn in 0..3 {
                        inv_w[yn][xn] = 1.0 / (self.dcls[yn][xn] + shift * self.mass[0]);
                        for l in 1..self.nl {
                            let g = self.gz[l - 1];
                            let extra = shift * self.mass[l];
                            let cprev = g * inv_w[(l - 1) * 3 + yn][xn];
                            cp[(l - 1) * 3 + yn][xn] = cprev;
                            inv_w[l * 3 + yn][xn] =
                                1.0 / (self.dcls[l * 3 + yn][xn] + extra - g * cprev);
                        }
                    }
                }
                Factors::LineZ { inv_w, cp }
            }
        }
    }

    /// Serial precondition pass `z ← M⁻¹·r` over the whole grid. Returns
    /// `r·z` folded from the partials in index order. `scratch` must hold
    /// `n` elements for line-z (the forward-elimination buffer); Jacobi
    /// ignores it.
    ///
    /// The line-z sweeps run whole contiguous planes per layer — the
    /// per-element arithmetic and the per-row fold order are exactly those
    /// of the row-partitioned [`System::linez_rows`] the threaded driver
    /// uses, so both produce bit-identical results.
    fn precondition_full(
        &self,
        fac: &Factors,
        r: &[f64],
        z: &mut [f64],
        pt: &mut [f64],
        scratch: &mut [f64],
    ) -> f64 {
        let nxy = self.nxy();
        match fac {
            Factors::Jacobi { inv } => jacobi_slab(inv, 0, self.ny, r, z, pt, self.nx),
            Factors::LineZ { inv_w, cp } => {
                let (nx, ny, nl) = (self.nx, self.ny, self.nl);
                // forward: y_0 = r_0/w_0, y_l = (r_l + gz[l−1]·y_{l−1})/w_l
                for j in 0..ny {
                    let (iwe, iwm) = row_cls(inv_w, 0, j, ny, nx);
                    let o = j * nx;
                    scratch[o] = r[o] * iwe;
                    for i in 1..nx.saturating_sub(1) {
                        scratch[o + i] = r[o + i] * iwm;
                    }
                    if nx > 1 {
                        scratch[o + nx - 1] = r[o + nx - 1] * iwe;
                    }
                }
                for l in 1..nl {
                    let g = self.gz[l - 1];
                    let (prev, cur) = scratch.split_at_mut(l * nxy);
                    let prev = &prev[(l - 1) * nxy..];
                    let base = l * nxy;
                    for j in 0..ny {
                        let (iwe, iwm) = row_cls(inv_w, l, j, ny, nx);
                        let o = j * nx;
                        cur[o] = (r[base + o] + g * prev[o]) * iwe;
                        for i in 1..nx.saturating_sub(1) {
                            cur[o + i] = (r[base + o + i] + g * prev[o + i]) * iwm;
                        }
                        if nx > 1 {
                            let e = o + nx - 1;
                            cur[e] = (r[base + e] + g * prev[e]) * iwe;
                        }
                    }
                }
                // backward: z_{nl−1} = y_{nl−1}, z_l = y_l + cp_l·z_{l+1}
                z[(nl - 1) * nxy..].copy_from_slice(&scratch[(nl - 1) * nxy..]);
                for l in (0..nl - 1).rev() {
                    let (lo, hi) = z.split_at_mut((l + 1) * nxy);
                    let zu = &hi[..nxy];
                    let zl = &mut lo[l * nxy..];
                    let base = l * nxy;
                    for j in 0..ny {
                        let (cpe, cpm) = row_cls(cp, l, j, ny, nx);
                        let o = j * nx;
                        zl[o] = scratch[base + o] + cpe * zu[o];
                        for i in 1..nx.saturating_sub(1) {
                            zl[o + i] = scratch[base + o + i] + cpm * zu[o + i];
                        }
                        if nx > 1 {
                            let e = o + nx - 1;
                            zl[e] = scratch[base + e] + cpe * zu[e];
                        }
                    }
                }
                // r·z partials, one per (row, layer) at pt[j·nl + l] —
                // the same lanes, in the same slots, as [`System::linez_rows`]
                for j in 0..self.ny {
                    for l in 0..nl {
                        let g = l * nxy + j * nx;
                        pt[j * nl + l] = dot_row(&r[g..g + nx], &z[g..g + nx]);
                    }
                }
            }
        }
        pt.iter().sum()
    }

    /// Thomas forward/back substitution for the rows `j0..j1` of every
    /// layer. `rows[l]` is that layer's `(j1−j0)·nx` mutable window of `z`;
    /// `scratch` holds the `nl·nx` forward-elimination buffer; `pt` gets
    /// one `r·z` partial per `(row, layer)` pair at `pt[jj·nl + l]`.
    #[allow(clippy::too_many_arguments)]
    fn linez_rows(
        &self,
        inv_w: &[[f64; 3]],
        cp: &[[f64; 3]],
        r: &[f64],
        rows: &mut [&mut [f64]],
        j0: usize,
        j1: usize,
        pt: &mut [f64],
        scratch: &mut [f64],
    ) {
        let (nx, ny, nl) = (self.nx, self.ny, self.nl);
        let nxy = self.nxy();
        for j in j0..j1 {
            let jj = j - j0;
            // forward: y_0 = r_0/w_0, y_l = (r_l + gz[l−1]·y_{l−1})/w_l
            let g0 = j * nx;
            let (iwe, iwm) = row_cls(inv_w, 0, j, ny, nx);
            scratch[0] = r[g0] * iwe;
            for i in 1..nx.saturating_sub(1) {
                scratch[i] = r[g0 + i] * iwm;
            }
            if nx > 1 {
                scratch[nx - 1] = r[g0 + nx - 1] * iwe;
            }
            for l in 1..nl {
                let g = l * nxy + j * nx;
                let gzc = self.gz[l - 1];
                let (iwe, iwm) = row_cls(inv_w, l, j, ny, nx);
                let (prev, cur) = scratch.split_at_mut(l * nx);
                let prev = &prev[(l - 1) * nx..];
                cur[0] = (r[g] + gzc * prev[0]) * iwe;
                for i in 1..nx.saturating_sub(1) {
                    cur[i] = (r[g + i] + gzc * prev[i]) * iwm;
                }
                if nx > 1 {
                    cur[nx - 1] = (r[g + nx - 1] + gzc * prev[nx - 1]) * iwe;
                }
            }
            // backward: z_{nl−1} = y_{nl−1}, z_l = y_l + cp_l·z_{l+1}
            rows[nl - 1][jj * nx..(jj + 1) * nx].copy_from_slice(&scratch[(nl - 1) * nx..nl * nx]);
            for l in (0..nl.saturating_sub(1)).rev() {
                let (lo, hi) = rows.split_at_mut(l + 1);
                let zu = &hi[0][jj * nx..(jj + 1) * nx];
                let zl = &mut lo[l][jj * nx..(jj + 1) * nx];
                let (cpe, cpm) = row_cls(cp, l, j, ny, nx);
                zl[0] = scratch[l * nx] + cpe * zu[0];
                for i in 1..nx.saturating_sub(1) {
                    zl[i] = scratch[l * nx + i] + cpm * zu[i];
                }
                if nx > 1 {
                    zl[nx - 1] = scratch[l * nx + nx - 1] + cpe * zu[nx - 1];
                }
            }
            // r·z partials for this row, one per (row, layer)
            for (l, row) in rows.iter().enumerate() {
                let zr = &row[jj * nx..(jj + 1) * nx];
                let g = l * nxy + j * nx;
                pt[jj * nl + l] = dot_row(&r[g..g + nx], zr);
            }
        }
    }

    /// Serial line-z iteration tail, fully fused: per layer, the CG update
    /// (`x += αp`, `r −= αap`, per-row `‖r‖²` partials into `pt_r2`)
    /// immediately feeds the Thomas forward elimination while the fresh
    /// residual is still in cache; the back-substitution then writes `z`
    /// and folds the per-`(row, layer)` `r·z` partials into `pt_rz` in the
    /// same pass. Every chain and partial slot matches the threaded
    /// driver's unfused update + [`System::linez_rows`] phases, so the
    /// results are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn linez_cycle(
        &self,
        alpha: f64,
        p: &[f64],
        ap: &[f64],
        inv_w: &[[f64; 3]],
        cp: &[[f64; 3]],
        x: &mut [f64],
        r: &mut [f64],
        z: &mut [f64],
        pt_r2: &mut [f64],
        pt_rz: &mut [f64],
        scratch: &mut [f64],
    ) {
        let (nx, ny, nl) = (self.nx, self.ny, self.nl);
        let nxy = self.nxy();
        // CG update + forward elimination, layer by layer
        for l in 0..nl {
            let base = l * nxy;
            update_slab(
                alpha,
                &p[base..base + nxy],
                &ap[base..base + nxy],
                &mut x[base..base + nxy],
                &mut r[base..base + nxy],
                &mut pt_r2[l * ny..(l + 1) * ny],
                nx,
            );
            if l == 0 {
                for j in 0..ny {
                    let (iwe, iwm) = row_cls(inv_w, 0, j, ny, nx);
                    let o = j * nx;
                    scratch[o] = r[o] * iwe;
                    for i in 1..nx.saturating_sub(1) {
                        scratch[o + i] = r[o + i] * iwm;
                    }
                    if nx > 1 {
                        scratch[o + nx - 1] = r[o + nx - 1] * iwe;
                    }
                }
            } else {
                let g = self.gz[l - 1];
                let (prev, cur) = scratch.split_at_mut(base);
                let prev = &prev[base - nxy..];
                for j in 0..ny {
                    let (iwe, iwm) = row_cls(inv_w, l, j, ny, nx);
                    let o = j * nx;
                    cur[o] = (r[base + o] + g * prev[o]) * iwe;
                    for i in 1..nx.saturating_sub(1) {
                        cur[o + i] = (r[base + o + i] + g * prev[o + i]) * iwm;
                    }
                    if nx > 1 {
                        let e = o + nx - 1;
                        cur[e] = (r[base + e] + g * prev[e]) * iwe;
                    }
                }
            }
        }
        // back substitution fused with the r·z fold
        let top = (nl - 1) * nxy;
        z[top..].copy_from_slice(&scratch[top..]);
        for j in 0..ny {
            let g = top + j * nx;
            pt_rz[j * nl + (nl - 1)] = dot_row(&r[g..g + nx], &z[g..g + nx]);
        }
        for l in (0..nl - 1).rev() {
            let base = l * nxy;
            let (zlo, zhi) = z.split_at_mut(base + nxy);
            let zl = &mut zlo[base..];
            let zu = &zhi[..nxy];
            for j in 0..ny {
                let (cpe, cpm) = row_cls(cp, l, j, ny, nx);
                let o = j * nx;
                zl[o] = scratch[base + o] + cpe * zu[o];
                for i in 1..nx.saturating_sub(1) {
                    zl[o + i] = scratch[base + o + i] + cpm * zu[o + i];
                }
                if nx > 1 {
                    let e = o + nx - 1;
                    zl[e] = scratch[base + e] + cpe * zu[e];
                }
                pt_rz[j * nl + l] = dot_row(&r[base + o..base + o + nx], &zl[o..o + nx]);
            }
        }
    }

    /// Preconditioned CG for `(A + shift·M) x = b`, warm-started at `x`.
    /// On success also returns the iteration count and final relative
    /// residual. The residual norm is carried over from the fused update
    /// pass — never recomputed — and the preconditioner divisions are
    /// hoisted into the precomputed [`Factors`]. Dispatches to the
    /// persistent-worker driver when more than one thread is useful; both
    /// drivers produce bit-identical results (see the module docs).
    fn cg(&self, shift: f64, b: &[f64], x: Vec<f64>) -> Result<(Vec<f64>, SolveStats), SolveError> {
        if stacksim_faults::armed() {
            match stacksim_faults::check(crate::faults::SITE_CG, self.cfg.preconditioner.label()) {
                Some(stacksim_faults::Fault::NoConvergence) => {
                    return Err(SolveError::NoConvergence {
                        iters: 0,
                        residual: f64::INFINITY,
                    });
                }
                Some(stacksim_faults::Fault::Stall { ms }) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                _ => {}
            }
        }
        let fac = self.factorize(shift);
        let workers = effective_workers(self.cfg.threads, self.nl, self.ny);
        if !stacksim_obs::enabled() {
            return if workers > 1 {
                self.cg_mt(shift, b, x, &fac, workers)
            } else {
                self.cg_serial(shift, b, x, &fac)
            };
        }
        // Observability wrapper: pure timing and counter updates around
        // the unchanged numeric path — results stay bit-identical.
        let t0 = std::time::Instant::now();
        let result = if workers > 1 {
            self.cg_mt(shift, b, x, &fac, workers)
        } else {
            self.cg_serial(shift, b, x, &fac)
        };
        let wall_us = t0.elapsed().as_micros() as u64;
        stacksim_obs::counter(crate::obs::CG_SOLVE_US).add(wall_us);
        if let Ok((_, stats)) = &result {
            stacksim_obs::counter(crate::obs::CG_SOLVES).inc();
            stacksim_obs::counter(crate::obs::CG_ITERATIONS).add(stats.iterations as u64);
            stacksim_obs::histogram(crate::obs::CG_ITERS_PER_SOLVE).record(stats.iterations as u64);
            stacksim_obs::gauge(crate::obs::CG_RESIDUAL).set(stats.residual);
            stacksim_obs::event(
                crate::obs::EVENT_SOLVE,
                &[
                    ("iters", stacksim_obs::FieldValue::from(stats.iterations)),
                    ("residual", stacksim_obs::FieldValue::from(stats.residual)),
                    ("workers", stacksim_obs::FieldValue::from(workers)),
                    ("wall_us", stacksim_obs::FieldValue::from(wall_us)),
                ],
            );
        }
        result
    }

    /// The single-threaded CG driver: straight-line calls into the slab
    /// kernels, folding each reduction's per-layer (per-row) partials in
    /// index order.
    fn cg_serial(
        &self,
        shift: f64,
        b: &[f64],
        mut x: Vec<f64>,
        fac: &Factors,
    ) -> Result<(Vec<f64>, SolveStats), SolveError> {
        let n = x.len();
        let nx = self.nx;
        let linez = matches!(fac, Factors::LineZ { .. });
        let rows = self.nl * self.ny;
        let mut pt_a = vec![0.0f64; rows];
        let mut pt_b = vec![0.0f64; rows];
        let mut pt_pre = vec![0.0f64; rows];
        let mut scratch = vec![0.0f64; if linez { n } else { 0 }];

        // Observability: phase wall clocks plus the relative-residual
        // trajectory (sampled at power-of-two iterations), all inert and
        // allocation-free unless the obs layer is enabled.
        let observe = stacksim_obs::enabled();
        let mut clock = crate::obs::PhaseClock::new(observe);
        let mut trajectory: Vec<f64> = Vec::new();

        let mut r = vec![0.0f64; n];
        self.apply_slab(shift, &x, &mut r, 0);
        residual_slab(b, &mut r, &mut pt_a, &mut pt_b, nx);
        let bnorm = pt_a.iter().sum::<f64>().sqrt().max(1e-300);
        let mut rnorm2: f64 = pt_b.iter().sum();
        clock.lap(crate::obs::PH_APPLY);

        let mut z = vec![0.0f64; n];
        let mut rz = self.precondition_full(fac, &r, &mut z, &mut pt_pre, &mut scratch);
        let mut p = z.clone();
        let mut ap = vec![0.0f64; n];
        clock.lap(crate::obs::PH_PRECOND);

        for iter in 0..self.cfg.max_iters {
            let rel = rnorm2.sqrt() / bnorm;
            if observe && (iter.is_power_of_two() || iter == 0) {
                trajectory.push(rel);
            }
            if rel < self.cfg.tolerance {
                let stats = SolveStats {
                    solves: 1,
                    iterations: iter,
                    residual: rel,
                };
                if observe {
                    Self::emit_trajectory_event(iter, rel, &trajectory);
                }
                return Ok((x, stats));
            }
            self.apply_dot_slab(shift, &p, &mut ap, 0, &mut pt_a);
            clock.lap(crate::obs::PH_APPLY);
            let pap: f64 = pt_a.iter().sum();
            let alpha = rz / pap;
            clock.lap(crate::obs::PH_REDUCE);
            let rz_new = match fac {
                Factors::Jacobi { inv } => {
                    update_jacobi_slab(
                        alpha, &p, &ap, inv, 0, self.ny, &mut x, &mut r, &mut z, &mut pt_a,
                        &mut pt_b, nx,
                    );
                    rnorm2 = pt_a.iter().sum();
                    pt_b.iter().sum()
                }
                Factors::LineZ { inv_w, cp } => {
                    self.linez_cycle(
                        alpha,
                        &p,
                        &ap,
                        inv_w,
                        cp,
                        &mut x,
                        &mut r,
                        &mut z,
                        &mut pt_a,
                        &mut pt_pre,
                        &mut scratch,
                    );
                    rnorm2 = pt_a.iter().sum();
                    pt_pre.iter().sum()
                }
            };
            clock.lap(crate::obs::PH_UPDATE);
            let beta = rz_new / rz;
            rz = rz_new;
            for (pv, &zv) in p.iter_mut().zip(&z) {
                *pv = zv + beta * *pv;
            }
            clock.lap(crate::obs::PH_UPDATE);
        }
        Err(SolveError::NoConvergence {
            iters: self.cfg.max_iters,
            residual: rnorm2.sqrt() / bnorm,
        })
    }

    /// Emit the serial driver's residual-trajectory point event.
    #[cold]
    fn emit_trajectory_event(iters: usize, final_rel: f64, samples: &[f64]) {
        let joined = samples
            .iter()
            .map(|v| format!("{v:e}"))
            .collect::<Vec<_>>()
            .join(",");
        stacksim_obs::event(
            crate::obs::EVENT_TRAJECTORY,
            &[
                ("iters", stacksim_obs::FieldValue::from(iters)),
                ("residual", stacksim_obs::FieldValue::from(final_rel)),
                ("samples", stacksim_obs::FieldValue::from(joined)),
            ],
        );
    }

    /// The persistent-worker CG driver: spawns `workers − 1` scoped threads
    /// **once per solve** (the calling thread is worker 0) and coordinates
    /// the phases with a [`SpinBarrier`] — at these grid sizes a per-phase
    /// `thread::scope` costs more than the phase's arithmetic, a barrier
    /// crossing doesn't. Worker 0 folds every reduction's partials in index
    /// order, exactly as the serial driver does, so the result is
    /// bit-identical to `cg_serial` for any worker count.
    fn cg_mt(
        &self,
        shift: f64,
        b: &[f64],
        mut x: Vec<f64>,
        fac: &Factors,
        workers: usize,
    ) -> Result<(Vec<f64>, SolveStats), SolveError> {
        let n = x.len();
        let (nl, ny) = (self.nl, self.ny);
        let mut r = vec![0.0f64; n];
        let mut z = vec![0.0f64; n];
        let mut p = vec![0.0f64; n];
        let mut ap = vec![0.0f64; n];
        let rows = nl * ny;
        let mut pt_a = vec![0.0f64; rows];
        let mut pt_b = vec![0.0f64; rows];
        let mut pt_pre = vec![0.0f64; rows];
        let mut scal = [0.0f64; 2];
        let layer_bounds = slab_bounds(nl, workers);
        let row_bounds = slab_bounds(ny, workers);
        let barrier = SpinBarrier::new(workers);
        let stop = AtomicUsize::new(0);

        let shared = MtShared {
            shift,
            b,
            x: SharedSlice::new(&mut x),
            r: SharedSlice::new(&mut r),
            z: SharedSlice::new(&mut z),
            p: SharedSlice::new(&mut p),
            ap: SharedSlice::new(&mut ap),
            pt_a: SharedSlice::new(&mut pt_a),
            pt_b: SharedSlice::new(&mut pt_b),
            pt_pre: SharedSlice::new(&mut pt_pre),
            scal: SharedSlice::new(&mut scal),
            fac,
            layer_bounds: &layer_bounds,
            row_bounds: &row_bounds,
            barrier: &barrier,
            stop: &stop,
        };
        let outcome = std::thread::scope(|s| {
            for w in 1..workers {
                s.spawn(move || {
                    self.cg_mt_worker(w, shared);
                });
            }
            self.cg_mt_worker(0, shared)
        });
        match outcome {
            (true, iterations, residual) => Ok((
                x,
                SolveStats {
                    solves: 1,
                    iterations,
                    residual,
                },
            )),
            (false, _, residual) => Err(SolveError::NoConvergence {
                iters: self.cfg.max_iters,
                residual,
            }),
        }
    }

    /// One worker of [`System::cg_mt`]. Every worker crosses the same
    /// barrier sequence; worker 0 additionally folds the reduction partials
    /// (always in index order) between barriers and publishes `α`/`β`
    /// through `scal` and convergence through `stop`. Returns
    /// `(converged, iterations, relative residual)` — meaningful only on
    /// worker 0.
    ///
    /// Every `unsafe` block below follows the [`SharedSlice`] contract: the
    /// ranges derived between two consecutive barrier crossings are
    /// pairwise disjoint across workers (fixed layer slabs, or fixed plane
    /// rows for the line-z phases), shared reads never overlap a concurrent
    /// mutable range, and every derived slice dies before the next barrier.
    fn cg_mt_worker(&self, w: usize, c: MtShared<'_>) -> (bool, usize, f64) {
        let nxy = self.nxy();
        let (nx, ny) = (self.nx, self.ny);
        let (l0, l1) = c.layer_bounds[w];
        let (a, e) = (l0 * nxy, l1 * nxy);
        // This worker's slice of the per-row partial arrays (layer-slab
        // phases are partitioned by layer, so their rows are contiguous).
        let (ra, re) = (l0 * ny, l1 * ny);
        let linez = matches!(c.fac, Factors::LineZ { .. });
        let mut scratch = if linez {
            vec![0.0f64; self.nl * self.nx]
        } else {
            Vec::new()
        };

        // Worker-0 solve-lifetime state (dead weight on the others).
        let (mut bnorm, mut rnorm2, mut rz) = (0.0f64, 0.0f64, 0.0f64);
        let mut outcome = (false, 0usize, 0.0f64);
        // Worker 0 reports pool phase wall time (its barrier-to-barrier
        // intervals, which include waiting for stragglers). Flushes to
        // the phase counters on drop, covering every return path; purely
        // timing, so worker-count bit-identicality is preserved.
        let mut clock = crate::obs::PhaseClock::new(w == 0 && stacksim_obs::enabled());

        // init: r ← A·x on the slab, then r ← b − r with norm partials,
        // then z ← M⁻¹·r, then fold + convergence check, then p ← z.
        unsafe {
            self.apply_slab(c.shift, c.x.whole(), c.r.range_mut(a, e), l0);
        }
        c.barrier.wait();
        unsafe {
            residual_slab(
                &c.b[a..e],
                c.r.range_mut(a, e),
                c.pt_a.range_mut(ra, re),
                c.pt_b.range_mut(ra, re),
                nx,
            );
        }
        c.barrier.wait();
        clock.lap(crate::obs::PH_APPLY);
        self.precondition_mt(w, &c, &mut scratch);
        c.barrier.wait();
        clock.lap(crate::obs::PH_PRECOND);
        if w == 0 {
            // Only worker 0 touches the partials between these barriers.
            unsafe {
                bnorm = c.pt_a.whole().iter().sum::<f64>().sqrt().max(1e-300);
                rnorm2 = c.pt_b.whole().iter().sum();
                rz = c.pt_pre.whole().iter().sum();
            }
            let rel = rnorm2.sqrt() / bnorm;
            if rel < self.cfg.tolerance {
                outcome = (true, 0, rel);
                c.stop.store(1, Ordering::Release);
            }
        }
        c.barrier.wait();
        clock.lap(crate::obs::PH_REDUCE);
        if c.stop.load(Ordering::Acquire) != 0 {
            return outcome;
        }
        unsafe {
            c.p.range_mut(a, e).copy_from_slice(c.z.range(a, e));
        }
        c.barrier.wait();
        clock.lap(crate::obs::PH_UPDATE);

        for iter in 0..self.cfg.max_iters {
            // ap ← A·p fused with the per-layer p·ap partials.
            unsafe {
                self.apply_dot_slab(
                    c.shift,
                    c.p.whole(),
                    c.ap.range_mut(a, e),
                    l0,
                    c.pt_a.range_mut(ra, re),
                );
            }
            c.barrier.wait();
            clock.lap(crate::obs::PH_APPLY);
            if w == 0 {
                unsafe {
                    let pap: f64 = c.pt_a.whole().iter().sum();
                    c.scal.range_mut(0, 2)[0] = rz / pap;
                }
            }
            c.barrier.wait();
            clock.lap(crate::obs::PH_REDUCE);
            let alpha = unsafe { c.scal.range(0, 2)[0] };
            match c.fac {
                Factors::Jacobi { inv } => unsafe {
                    update_jacobi_slab(
                        alpha,
                        c.p.range(a, e),
                        c.ap.range(a, e),
                        inv,
                        l0,
                        ny,
                        c.x.range_mut(a, e),
                        c.r.range_mut(a, e),
                        c.z.range_mut(a, e),
                        c.pt_a.range_mut(ra, re),
                        c.pt_b.range_mut(ra, re),
                        nx,
                    );
                },
                Factors::LineZ { inv_w, cp } => {
                    unsafe {
                        update_slab(
                            alpha,
                            c.p.range(a, e),
                            c.ap.range(a, e),
                            c.x.range_mut(a, e),
                            c.r.range_mut(a, e),
                            c.pt_a.range_mut(ra, re),
                            nx,
                        );
                    }
                    // The line-z solve reads whole residual columns, so it
                    // repartitions by plane rows behind a barrier.
                    c.barrier.wait();
                    let (j0, j1) = c.row_bounds[w];
                    self.linez_mt(&c, inv_w, cp, j0, j1, &mut scratch);
                }
            }
            c.barrier.wait();
            clock.lap(crate::obs::PH_UPDATE);
            if w == 0 {
                unsafe {
                    rnorm2 = c.pt_a.whole().iter().sum();
                    let rz_new: f64 = if linez {
                        c.pt_pre.whole().iter().sum()
                    } else {
                        c.pt_b.whole().iter().sum()
                    };
                    c.scal.range_mut(0, 2)[1] = rz_new / rz;
                    rz = rz_new;
                }
                // Match the serial driver exactly: it only checks at the
                // top of the *next* iteration, so a solve that first meets
                // tolerance after the final allowed update still errors.
                let rel = rnorm2.sqrt() / bnorm;
                if rel < self.cfg.tolerance && iter + 1 < self.cfg.max_iters {
                    outcome = (true, iter + 1, rel);
                    c.stop.store(1, Ordering::Release);
                }
            }
            c.barrier.wait();
            clock.lap(crate::obs::PH_REDUCE);
            if c.stop.load(Ordering::Acquire) != 0 {
                return outcome;
            }
            let beta = unsafe { c.scal.range(0, 2)[1] };
            unsafe {
                let ps = c.p.range_mut(a, e);
                let zs = c.z.range(a, e);
                for (pv, &zv) in ps.iter_mut().zip(zs) {
                    *pv = zv + beta * *pv;
                }
            }
            c.barrier.wait();
            clock.lap(crate::obs::PH_UPDATE);
        }
        if w == 0 {
            outcome = (false, self.cfg.max_iters, rnorm2.sqrt() / bnorm);
        }
        outcome
    }

    /// One worker's share of the precondition pass `z ← M⁻¹·r`: its layer
    /// slab for Jacobi, its plane rows for line-z.
    fn precondition_mt(&self, w: usize, c: &MtShared<'_>, scratch: &mut [f64]) {
        let nxy = self.nxy();
        match c.fac {
            Factors::Jacobi { inv } => {
                let (l0, l1) = c.layer_bounds[w];
                let (a, e) = (l0 * nxy, l1 * nxy);
                // SAFETY: layer slabs are pairwise disjoint; `r` is only
                // read this phase.
                unsafe {
                    jacobi_slab(
                        inv,
                        l0,
                        self.ny,
                        c.r.range(a, e),
                        c.z.range_mut(a, e),
                        c.pt_pre.range_mut(l0 * self.ny, l1 * self.ny),
                        self.nx,
                    );
                }
            }
            Factors::LineZ { inv_w, cp } => {
                let (j0, j1) = c.row_bounds[w];
                self.linez_mt(c, inv_w, cp, j0, j1, scratch);
            }
        }
    }

    /// One worker's line-z precondition share: whole vertical columns for
    /// plane rows `j0..j1` of every layer, with per-`(row, layer)` `r·z`
    /// partials.
    fn linez_mt(
        &self,
        c: &MtShared<'_>,
        inv_w: &[[f64; 3]],
        cp: &[[f64; 3]],
        j0: usize,
        j1: usize,
        scratch: &mut [f64],
    ) {
        let nx = self.nx;
        let nxy = self.nxy();
        // SAFETY: each worker's row windows are disjoint from every other
        // worker's in every layer; `r` is only read this phase.
        unsafe {
            let r = c.r.whole();
            let mut rows: Vec<&mut [f64]> = (0..self.nl)
                .map(|l| c.z.range_mut(l * nxy + j0 * nx, l * nxy + j1 * nx))
                .collect();
            self.linez_rows(
                inv_w,
                cp,
                r,
                &mut rows,
                j0,
                j1,
                c.pt_pre.range_mut(j0 * self.nl, j1 * self.nl),
                scratch,
            );
        }
    }

    fn field(&self, t: Vec<f64>) -> TemperatureField {
        TemperatureField::new(self.nx, self.ny, self.names.clone(), t)
    }

    /// Solves the steady-state problem.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if CG stalls.
    pub fn steady(&self) -> Result<TemperatureField, SolveError> {
        Ok(self.steady_with_stats()?.field)
    }

    /// Solves the steady-state problem, also reporting CG convergence
    /// statistics (iteration count, final relative residual).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if CG stalls.
    pub fn steady_with_stats(&self) -> Result<Solution, SolveError> {
        let x0 = vec![self.ambient; self.rhs.len()];
        let (t, stats) = self.cg(0.0, &self.rhs, x0)?;
        Ok(Solution {
            field: self.field(t),
            stats,
        })
    }

    /// Solves the steady-state problem warm-started from `x0` — typically
    /// the previous point of a parameter sweep. The answer matches
    /// [`System::steady_with_stats`] to within the solver tolerance; only
    /// the iteration count drops.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if CG stalls.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s grid or layer count differs from this system's.
    pub fn steady_from(&self, x0: &TemperatureField) -> Result<Solution, SolveError> {
        let (fnx, fny) = x0.dims();
        let fl = x0.layer_names().len();
        assert!(
            fnx == self.nx && fny == self.ny && fl == self.nl,
            "warm-start field is {fnx}x{fny}x{fl} but the system is {}x{}x{}",
            self.nx,
            self.ny,
            self.nl
        );
        let (t, stats) = self.cg(0.0, &self.rhs, x0.cells().to_vec())?;
        Ok(Solution {
            field: self.field(t),
            stats,
        })
    }

    /// Integrates the transient problem with implicit Euler from a uniform
    /// start at `start_c`, taking `steps` steps of `dt_s` seconds. Returns
    /// the peak-temperature trajectory and the final field.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if any step's CG stalls.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive or `steps` is zero.
    pub fn transient(
        &self,
        start_c: f64,
        dt_s: f64,
        steps: usize,
    ) -> Result<(Vec<TransientPoint>, TemperatureField), SolveError> {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(steps > 0, "need at least one step");
        let n = self.rhs.len();
        let nxy = self.nxy();
        let shift = 1.0 / dt_s;
        let mut t = vec![start_c; n];
        let mut trajectory = Vec::with_capacity(steps);
        for step in 1..=steps {
            // (A + M/dt) T_new = b + (M/dt) T_old
            let mut b = self.rhs.clone();
            for u in 0..n {
                b[u] += shift * self.mass[u / nxy] * t[u];
            }
            t = self.cg(shift, &b, t)?.0;
            let peak = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            trajectory.push(TransientPoint {
                time_s: step as f64 * dt_s,
                peak_c: peak,
            });
        }
        Ok((trajectory, self.field(t)))
    }
}

/// Solves the stack for its steady-state temperature field (convenience
/// wrapper around [`System::assemble`] + [`System::steady`]).
///
/// # Errors
///
/// Returns [`SolveError`] if the stack is empty, a power map's die size
/// disagrees with the stack footprint, or CG fails to converge.
pub fn solve(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<TemperatureField, SolveError> {
    System::assemble(stack, bc, cfg)?.steady()
}

/// Like [`solve`], but also reports CG convergence statistics — the
/// experiment harness uses this to attribute solver work to each run.
///
/// # Errors
///
/// Returns [`SolveError`] under the same conditions as [`solve`].
pub fn solve_with_stats(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<Solution, SolveError> {
    System::assemble(stack, bc, cfg)?.steady_with_stats()
}

/// Integrates the stack's transient response from a uniform ambient start
/// (e.g. power-on) — the time-dependent form of Eq. (1).
///
/// # Errors
///
/// Propagates assembly and CG failures.
pub fn solve_transient(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
    dt_s: f64,
    steps: usize,
) -> Result<(Vec<TransientPoint>, TemperatureField), SolveError> {
    System::assemble(stack, bc, cfg)?.transient(bc.ambient, dt_s, steps)
}

/// The solver as it stood **before** the performance work, frozen verbatim
/// as the benchmark baseline (`stacksim bench` reports speedups against
/// it). Branchy per-cell stencil, unfused CG vector passes, per-iteration
/// preconditioner divisions, residual norm recomputed every iteration,
/// always cold-started, always single-threaded, always Jacobi —
/// [`SolverConfig::threads`] and [`SolverConfig::preconditioner`] are
/// ignored here. Do not optimise this module; its whole value is standing
/// still.
pub mod reference {
    use super::*;

    /// Applies `(A + shift·M) x` with the original branchy per-cell loop.
    fn apply(sys: &System, shift: f64, x: &[f64], out: &mut [f64]) {
        let (nx, ny, nl) = (sys.nx, sys.ny, sys.nl);
        let nxy = sys.nxy();
        for l in 0..nl {
            let extra = shift * sys.mass[l];
            for j in 0..ny {
                for i in 0..nx {
                    let u = l * nxy + j * nx + i;
                    let mut acc = (sys.diag[u] + extra) * x[u];
                    if i > 0 {
                        acc -= sys.gx[l] * x[u - 1];
                    }
                    if i + 1 < nx {
                        acc -= sys.gx[l] * x[u + 1];
                    }
                    if j > 0 {
                        acc -= sys.gy[l] * x[u - nx];
                    }
                    if j + 1 < ny {
                        acc -= sys.gy[l] * x[u + nx];
                    }
                    if l > 0 {
                        acc -= sys.gz[l - 1] * x[u - nxy];
                    }
                    if l + 1 < nl {
                        acc -= sys.gz[l] * x[u + nxy];
                    }
                    out[u] = acc;
                }
            }
        }
    }

    /// The original Jacobi-preconditioned CG: separate passes for every
    /// vector update and reduction.
    fn cg(
        sys: &System,
        shift: f64,
        b: &[f64],
        mut x: Vec<f64>,
    ) -> Result<(Vec<f64>, SolveStats), SolveError> {
        let n = x.len();
        let mut r = vec![0.0f64; n];
        let mut ax = vec![0.0f64; n];
        apply(sys, shift, &x, &mut ax);
        for u in 0..n {
            r[u] = b[u] - ax[u];
        }
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        let nxy = sys.nxy();
        let pre = |u: usize| sys.diag[u] + shift * sys.mass[u / nxy];
        let mut z: Vec<f64> = (0..n).map(|u| r[u] / pre(u)).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0f64; n];
        for iter in 0..sys.cfg.max_iters {
            let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rnorm / bnorm < sys.cfg.tolerance {
                let stats = SolveStats {
                    solves: 1,
                    iterations: iter,
                    residual: rnorm / bnorm,
                };
                return Ok((x, stats));
            }
            apply(sys, shift, &p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            let alpha = rz / pap;
            for u in 0..n {
                x[u] += alpha * p[u];
                r[u] -= alpha * ap[u];
            }
            for (u, zv) in z.iter_mut().enumerate() {
                *zv = r[u] / pre(u);
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for u in 0..n {
                p[u] = z[u] + beta * p[u];
            }
        }
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        Err(SolveError::NoConvergence {
            iters: sys.cfg.max_iters,
            residual: rnorm / bnorm,
        })
    }

    /// Steady-state solve with the frozen baseline solver (always a cold
    /// start from ambient).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoConvergence`] if CG stalls.
    pub fn steady_with_stats(sys: &System) -> Result<Solution, SolveError> {
        let x0 = vec![sys.ambient; sys.rhs.len()];
        let (t, stats) = cg(sys, 0.0, &sys.rhs, x0)?;
        Ok(Solution {
            field: sys.field(t),
            stats,
        })
    }

    /// Assemble-and-solve convenience wrapper around
    /// [`steady_with_stats`], mirroring [`super::solve_with_stats`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] under the same conditions as
    /// [`super::solve_with_stats`].
    pub fn solve_with_stats(
        stack: &LayerStack,
        bc: Boundary,
        cfg: SolverConfig,
    ) -> Result<Solution, SolveError> {
        steady_with_stats(&System::assemble(stack, bc, cfg)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Layer;
    use stacksim_floorplan::PowerGrid;

    #[test]
    fn builder_accepts_valid_config() {
        let cfg = SolverConfig::builder().nx(8).ny(8).build();
        assert_eq!((cfg.nx, cfg.ny), (8, 8));
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.preconditioner, Preconditioner::Jacobi);
    }

    #[test]
    fn zero_grid_rejected() {
        let err = SolverConfig::builder().nx(0).try_build();
        assert!(err.unwrap_err().to_string().contains("grid"));
        assert!(SolverConfig::builder().ny(0).try_build().is_err());
    }

    #[test]
    fn zero_iterations_rejected() {
        assert!(SolverConfig::builder().max_iters(0).try_build().is_err());
    }

    #[test]
    fn bad_tolerance_rejected() {
        assert!(SolverConfig::builder().tolerance(0.0).try_build().is_err());
        assert!(SolverConfig::builder().tolerance(-1.0).try_build().is_err());
        assert!(SolverConfig::builder()
            .tolerance(f64::NAN)
            .try_build()
            .is_err());
    }

    #[test]
    fn thread_bounds_enforced() {
        assert!(SolverConfig::builder().threads(0).try_build().is_err());
        assert!(SolverConfig::builder()
            .threads(MAX_SOLVER_THREADS + 1)
            .try_build()
            .is_err());
        let cfg = SolverConfig::builder().threads(MAX_SOLVER_THREADS).build();
        assert_eq!(cfg.threads, MAX_SOLVER_THREADS);
    }

    #[test]
    #[should_panic(expected = "invalid solver configuration")]
    fn build_panics_on_invalid() {
        let _ = SolverConfig::builder().max_iters(0).build();
    }

    fn uniform_power(nx: usize, ny: usize, w: f64) -> PowerGrid {
        let mut g = PowerGrid::zero(nx, ny, 10.0, 10.0);
        let per = w / (nx * ny) as f64;
        for j in 0..ny {
            for i in 0..nx {
                g.add(i, j, per);
            }
        }
        g
    }

    /// One uniform slab with uniform power: compare against the closed-form
    /// 1-D solution `T = Tamb + q'' * (1/h + t/(2k))` at the source plane.
    #[test]
    fn matches_one_dimensional_analytic_solution() {
        let area_m2 = 0.01 * 0.01; // 10 mm x 10 mm
        let power = 50.0;
        let q = power / area_m2; // W/m²

        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::active(
            "slab",
            1e-3,
            100.0,
            uniform_power(4, 4, power),
        ));
        let bc = Boundary {
            h_top: 5000.0,
            h_bottom: 1e-9,
            ambient: 40.0,
        };
        let f = solve(
            &stack,
            bc,
            SolverConfig {
                nx: 4,
                ny: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let expected = 40.0 + q * (1.0 / 5000.0 + 1e-3 / (2.0 * 100.0));
        let got = f.layer_peak(0);
        assert!(
            (got - expected).abs() < 0.5,
            "expected ~{expected:.2} C, got {got:.2} C"
        );
        assert!((f.layer_peak(0) - f.layer_min(0)).abs() < 1e-6);
    }

    /// Energy conservation: boundary flux equals injected power.
    #[test]
    fn conserves_energy() {
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::passive("lid", 2e-3, 50.0));
        stack.push(Layer::active("die", 1e-3, 100.0, uniform_power(6, 6, 30.0)));
        stack.push(Layer::passive("base", 2e-3, 1.0));
        let bc = Boundary {
            h_top: 3000.0,
            h_bottom: 20.0,
            ambient: 40.0,
        };
        let cfg = SolverConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        };
        let f = solve(&stack, bc, cfg).unwrap();
        let dx = 0.01 / 6.0;
        let a = dx * dx;
        let g_top = a / (2e-3 / (2.0 * 50.0) + 1.0 / 3000.0);
        let g_bot = a / (2e-3 / (2.0 * 1.0) + 1.0 / 20.0);
        let top: f64 = f.layer(0).iter().map(|t| g_top * (t - 40.0)).sum();
        let bottom: f64 = f.layer(2).iter().map(|t| g_bot * (t - 40.0)).sum();
        let out = top + bottom;
        assert!((out - 30.0).abs() < 0.01, "flux out {out:.4} W vs 30 W in");
    }

    /// Maximum principle: with a single heat source, the temperature is
    /// bounded by ambient from below and decreases away from the source.
    #[test]
    fn respects_maximum_principle() {
        let mut g = PowerGrid::zero(9, 9, 10.0, 10.0);
        g.add(4, 4, 20.0);
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::active("die", 0.5e-3, 120.0, g));
        stack.push(Layer::passive("spreader", 2e-3, 200.0));
        let bc = Boundary {
            h_top: 1e-9,
            h_bottom: 2000.0,
            ambient: 40.0,
        };
        let f = solve(
            &stack,
            bc,
            SolverConfig {
                nx: 9,
                ny: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(f.min() >= 40.0 - 1e-6, "nothing below ambient: {}", f.min());
        let die = f.layer(0);
        let centre = die[4 * 9 + 4];
        let corner = die[0];
        assert!(
            centre > corner + 0.5,
            "hotspot at the source: {centre} vs {corner}"
        );
    }

    #[test]
    fn empty_stack_is_an_error() {
        let stack = LayerStack::new(10.0, 10.0);
        assert_eq!(
            solve(&stack, Boundary::default(), SolverConfig::default()),
            Err(SolveError::EmptyStack)
        );
    }

    #[test]
    fn mismatched_power_map_is_an_error() {
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::active(
            "die",
            1e-3,
            100.0,
            PowerGrid::zero(4, 4, 5.0, 5.0),
        ));
        assert!(matches!(
            solve(&stack, Boundary::default(), SolverConfig::default()),
            Err(SolveError::PowerMapMismatch { .. })
        ));
    }

    /// A hotter boundary coefficient cools the stack monotonically.
    #[test]
    fn better_cooling_lowers_peak() {
        let mk = |h: f64| {
            let mut stack = LayerStack::new(10.0, 10.0);
            stack.push(Layer::active("die", 1e-3, 100.0, uniform_power(4, 4, 40.0)));
            let bc = Boundary {
                h_top: h,
                h_bottom: 10.0,
                ambient: 40.0,
            };
            solve(
                &stack,
                bc,
                SolverConfig {
                    nx: 4,
                    ny: 4,
                    ..Default::default()
                },
            )
            .unwrap()
            .peak()
        };
        let weak = mk(1000.0);
        let strong = mk(20_000.0);
        assert!(strong < weak, "{strong} < {weak}");
    }

    /// A five-layer stack with an off-centre hotspot — enough structure to
    /// exercise every peeled boundary and both preconditioners.
    fn layered_stack() -> (LayerStack, Boundary) {
        let mut g = PowerGrid::zero(8, 7, 10.0, 10.0);
        g.add(1, 1, 10.0);
        g.add(6, 5, 25.0);
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::passive("sink", 3e-3, 300.0));
        stack.push(Layer::passive("lid", 1e-3, 50.0));
        stack.push(Layer::active("die", 0.5e-3, 120.0, g));
        stack.push(Layer::passive("bond", 0.05e-3, 1.0));
        stack.push(Layer::passive("base", 2e-3, 10.0));
        let bc = Boundary {
            h_top: 4000.0,
            h_bottom: 30.0,
            ambient: 40.0,
        };
        (stack, bc)
    }

    /// The determinism contract: any thread count returns byte-identical
    /// fields, for both preconditioners.
    #[test]
    fn thread_count_never_changes_a_bit() {
        let (stack, bc) = layered_stack();
        for pre in [Preconditioner::Jacobi, Preconditioner::LineZ] {
            let run = |threads: usize| {
                let cfg = SolverConfig::builder()
                    .nx(8)
                    .ny(7)
                    .threads(threads)
                    .preconditioner(pre)
                    .build();
                solve(&stack, bc, cfg).unwrap()
            };
            let bits = |f: &TemperatureField| -> Vec<u64> {
                f.cells().iter().map(|v| v.to_bits()).collect()
            };
            let one = run(1);
            for threads in [2, 8] {
                assert_eq!(
                    bits(&one),
                    bits(&run(threads)),
                    "{} with {threads} threads drifted",
                    pre.label()
                );
            }
        }
    }

    /// The determinism contract exercised through the worker driver
    /// directly: [`effective_workers`] clamps the public path to the
    /// machine's cores, so on a single-core box `solve` never actually
    /// fans out — this forces `cg_mt` through real multi-worker barrier
    /// schedules and compares every output bit against the serial driver.
    #[test]
    fn forced_worker_counts_match_serial_bit_for_bit() {
        let (stack, bc) = layered_stack();
        for pre in [Preconditioner::Jacobi, Preconditioner::LineZ] {
            let cfg = SolverConfig::builder()
                .nx(8)
                .ny(7)
                .preconditioner(pre)
                .build();
            let sys = System::assemble(&stack, bc, cfg).unwrap();
            let fac = sys.factorize(0.0);
            let x0 = vec![bc.ambient; sys.rhs.len()];
            let (serial, sstats) = sys.cg_serial(0.0, &sys.rhs, x0.clone(), &fac).unwrap();
            let bits = |v: &[f64]| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
            for workers in [2, 3, 5] {
                let (mt, mstats) = sys.cg_mt(0.0, &sys.rhs, x0.clone(), &fac, workers).unwrap();
                assert_eq!(
                    sstats.iterations,
                    mstats.iterations,
                    "{} with {workers} forced workers changed the iteration count",
                    pre.label()
                );
                assert_eq!(
                    bits(&serial),
                    bits(&mt),
                    "{} with {workers} forced workers drifted",
                    pre.label()
                );
            }
        }
    }

    /// Line-z reaches the same answer as Jacobi in strictly fewer
    /// iterations — the vertical coupling dominates in a thin stack.
    #[test]
    fn linez_agrees_with_jacobi_and_cuts_iterations() {
        let (stack, bc) = layered_stack();
        let run = |pre: Preconditioner| {
            let cfg = SolverConfig::builder()
                .nx(8)
                .ny(7)
                .preconditioner(pre)
                .build();
            solve_with_stats(&stack, bc, cfg).unwrap()
        };
        let jacobi = run(Preconditioner::Jacobi);
        let linez = run(Preconditioner::LineZ);
        assert!(
            (jacobi.field.peak() - linez.field.peak()).abs() < 1e-6,
            "peaks disagree: {} vs {}",
            jacobi.field.peak(),
            linez.field.peak()
        );
        assert!(
            linez.stats.iterations < jacobi.stats.iterations,
            "line-z took {} iterations, jacobi {}",
            linez.stats.iterations,
            jacobi.stats.iterations
        );
    }

    /// Warm-starting from the converged solution is (nearly) free, and the
    /// answer does not move.
    #[test]
    fn warm_start_from_the_solution_is_free() {
        let (stack, bc) = layered_stack();
        let cfg = SolverConfig::builder().nx(8).ny(7).build();
        let sys = System::assemble(&stack, bc, cfg).unwrap();
        let cold = sys.steady_with_stats().unwrap();
        let warm = sys.steady_from(&cold.field).unwrap();
        assert!(
            warm.stats.iterations * 4 < cold.stats.iterations,
            "warm start took {} iterations vs {} cold",
            warm.stats.iterations,
            cold.stats.iterations
        );
        assert!((warm.field.peak() - cold.field.peak()).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "warm-start field")]
    fn warm_start_shape_mismatch_panics() {
        let (stack, bc) = layered_stack();
        let cfg = SolverConfig::builder().nx(8).ny(7).build();
        let sys = System::assemble(&stack, bc, cfg).unwrap();
        let wrong = TemperatureField::new(4, 4, vec!["only".into()], vec![40.0; 16]);
        let _ = sys.steady_from(&wrong);
    }

    fn transient_stack() -> (LayerStack, Boundary, SolverConfig) {
        let mut stack = LayerStack::new(10.0, 10.0);
        stack.push(Layer::passive("lid", 2e-3, 100.0));
        stack.push(Layer::active("die", 1e-3, 120.0, uniform_power(4, 4, 40.0)));
        let bc = Boundary {
            h_top: 4000.0,
            h_bottom: 10.0,
            ambient: 40.0,
        };
        let cfg = SolverConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        };
        (stack, bc, cfg)
    }

    /// Power-on heating is monotone and converges to the steady state.
    #[test]
    fn transient_converges_to_steady_state() {
        let (stack, bc, cfg) = transient_stack();
        let steady = solve(&stack, bc, cfg).unwrap().peak();
        let (traj, final_field) = solve_transient(&stack, bc, cfg, 0.05, 500).unwrap();
        for w in traj.windows(2) {
            assert!(w[1].peak_c >= w[0].peak_c - 1e-9, "monotone heating");
        }
        let last = traj.last().unwrap().peak_c;
        assert!(
            (last - steady).abs() < 0.1,
            "transient end {last:.3} vs steady {steady:.3}"
        );
        assert!((final_field.peak() - last).abs() < 1e-9);
    }

    /// The first transient step starts near ambient — thermal mass delays
    /// heating (the reason peak temperature is a steady-state, worst-case
    /// metric).
    #[test]
    fn transient_starts_cold() {
        let (stack, bc, cfg) = transient_stack();
        let steady = solve(&stack, bc, cfg).unwrap().peak();
        let (traj, _) = solve_transient(&stack, bc, cfg, 1e-4, 3).unwrap();
        assert!(
            traj[0].peak_c < 40.0 + 0.5 * (steady - 40.0),
            "after 0.1 ms the die is still far from steady: {:.2} vs {steady:.2}",
            traj[0].peak_c
        );
    }

    /// Doubling every layer's heat capacity roughly doubles the time to
    /// reach a given temperature (RC scaling).
    #[test]
    fn thermal_mass_sets_the_time_constant() {
        let (stack, bc, cfg) = transient_stack();
        let heavy = {
            let mut s = LayerStack::new(10.0, 10.0);
            for l in stack.layers() {
                s.push(l.with_heat_capacity(l.heat_capacity() * 2.0));
            }
            s
        };
        let target = 45.0;
        let time_to = |s: &LayerStack| {
            let (traj, _) = solve_transient(s, bc, cfg, 0.01, 400).unwrap();
            traj.iter()
                .find(|p| p.peak_c >= target)
                .map(|p| p.time_s)
                .unwrap()
        };
        let fast = time_to(&stack);
        let slow = time_to(&heavy);
        let ratio = slow / fast;
        assert!(ratio > 1.5 && ratio < 2.6, "RC scaling ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_panics() {
        let (stack, bc, cfg) = transient_stack();
        let _ = solve_transient(&stack, bc, cfg, 0.0, 10);
    }

    /// Transient integration is also covered by the determinism contract —
    /// the shifted system goes through the same phase drivers.
    #[test]
    fn transient_is_bit_identical_across_threads() {
        let (stack, bc, _) = transient_stack();
        let run = |threads: usize| {
            let cfg = SolverConfig::builder().nx(4).ny(4).threads(threads).build();
            solve_transient(&stack, bc, cfg, 0.05, 20).unwrap()
        };
        let (traj1, f1) = run(1);
        let (traj4, f4) = run(4);
        assert_eq!(
            f1.cells().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            f4.cells().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for (a, b) in traj1.iter().zip(&traj4) {
            assert_eq!(a.peak_c.to_bits(), b.peak_c.to_bits());
        }
    }
}
