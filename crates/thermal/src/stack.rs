//! Layered thermal stacks: the die/package/board system of Fig. 1 + Fig. 2.

use stacksim_floorplan::PowerGrid;

use crate::materials::{self, thickness, Conductivity, Metres};
use crate::solver::SolveError;

/// One layer of the thermal stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    name: String,
    thickness: Metres,
    k: Conductivity,
    k_lateral: Conductivity,
    /// Volumetric heat capacity ρc in J/(m³·K), used by the transient
    /// solver (Eq. 1's ρc ∂T/∂t term).
    rhoc: f64,
    power: Option<PowerGrid>,
}

impl Layer {
    /// A passive layer.
    ///
    /// # Panics
    ///
    /// Panics if thickness or conductivity is not positive.
    pub fn passive(name: impl Into<String>, thickness: Metres, k: Conductivity) -> Self {
        assert!(thickness > 0.0, "layer thickness must be positive");
        assert!(k > 0.0, "conductivity must be positive");
        Layer {
            name: name.into(),
            thickness,
            k,
            k_lateral: k,
            rhoc: materials::RHOC_DEFAULT,
            power: None,
        }
    }

    /// A passive layer with distinct vertical and lateral conductivities.
    /// Used to model layers that physically extend beyond the die footprint
    /// (heat-sink base, IHS): their extra cross-section shows up as enhanced
    /// lateral spreading within the die-sized solver domain.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not positive.
    pub fn passive_anisotropic(
        name: impl Into<String>,
        thickness: Metres,
        k_vertical: Conductivity,
        k_lateral: Conductivity,
    ) -> Self {
        assert!(k_lateral > 0.0, "lateral conductivity must be positive");
        let mut l = Layer::passive(name, thickness, k_vertical);
        l.k_lateral = k_lateral;
        l
    }

    /// An active (power-dissipating) silicon layer with its power map.
    pub fn active(
        name: impl Into<String>,
        thickness: Metres,
        k: Conductivity,
        power: PowerGrid,
    ) -> Self {
        let mut l = Layer::passive(name, thickness, k);
        l.power = Some(power);
        l
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thickness in metres.
    pub fn thickness(&self) -> Metres {
        self.thickness
    }

    /// Vertical conductivity in W/mK.
    pub fn conductivity(&self) -> Conductivity {
        self.k
    }

    /// Lateral (in-plane) conductivity in W/mK.
    pub fn lateral_conductivity(&self) -> Conductivity {
        self.k_lateral
    }

    /// The power map, if this is an active layer.
    pub fn power(&self) -> Option<&PowerGrid> {
        self.power.as_ref()
    }

    /// Volumetric heat capacity ρc in J/(m³·K).
    pub fn heat_capacity(&self) -> f64 {
        self.rhoc
    }

    /// A copy with a different volumetric heat capacity.
    ///
    /// # Panics
    ///
    /// Panics if `rhoc` is not positive.
    pub fn with_heat_capacity(&self, rhoc: f64) -> Layer {
        assert!(rhoc > 0.0, "heat capacity must be positive");
        Layer {
            rhoc,
            ..self.clone()
        }
    }

    /// A copy with a different conductivity (for sensitivity sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    pub fn with_conductivity(&self, k: Conductivity) -> Layer {
        assert!(k > 0.0, "conductivity must be positive");
        Layer {
            k,
            k_lateral: k,
            ..self.clone()
        }
    }
}

/// Convective boundary conditions at the two faces of the stack (Fig. 2:
/// forced convection at the heat sink, natural convection at the board).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boundary {
    /// Effective heat-transfer coefficient at the heat-sink face, W/(m²·K).
    /// This folds the fin array and airflow (and the sink's area advantage
    /// over the die) into one coefficient referenced to die area.
    pub h_top: f64,
    /// Natural-convection coefficient at the motherboard face, W/(m²·K).
    pub h_bottom: f64,
    /// Ambient air temperature in °C.
    pub ambient: f64,
}

impl Default for Boundary {
    fn default() -> Self {
        Boundary {
            h_top: DESKTOP_H_TOP,
            h_bottom: 15.0,
            ambient: materials::AMBIENT_C,
        }
    }
}

impl Boundary {
    /// Desktop cooling for the Core 2–class Memory+Logic study (§3).
    pub fn desktop() -> Self {
        Boundary::default()
    }

    /// High-performance cooling for the 147 W Logic+Logic study (§4).
    pub fn performance() -> Self {
        Boundary {
            h_top: PERFORMANCE_H_TOP,
            ..Boundary::default()
        }
    }

    /// Cooling referenced to a different die footprint: a smaller die under
    /// the same physical sink enjoys a larger sink-to-die area ratio, which
    /// shows up as a proportionally higher effective coefficient.
    pub fn scaled_to_area(&self, ref_area_mm2: f64, die_area_mm2: f64) -> Self {
        assert!(
            ref_area_mm2 > 0.0 && die_area_mm2 > 0.0,
            "areas must be positive"
        );
        Boundary {
            h_top: self.h_top * ref_area_mm2 / die_area_mm2,
            ..*self
        }
    }
}

/// Effective desktop-cooling coefficient (referenced to die area; the fin
/// array and the sink's area advantage over the die are folded in),
/// calibrated so the 92 W Core 2 baseline floorplan reaches the paper's
/// 88.35 °C peak with a ~59 °C coolest spot (Fig. 6).
pub const DESKTOP_H_TOP: f64 = 42_000.0;

/// High-performance cooling coefficient for the 147 W Pentium 4–class skew
/// of §4 (Fig. 11 / Table 5): a larger sink and stronger airflow, calibrated
/// so the planar 147 W design reaches the paper's 98.6 °C peak.
pub const PERFORMANCE_H_TOP: f64 = 66_000.0;

/// Effective lateral conductivity of the heat-sink base and IHS: these
/// plates extend far beyond the die, so within the die-sized solver domain
/// they spread heat as if their in-plane conductivity were much higher.
pub const SPREADING_K: f64 = 1_500.0;

/// A full stack: layers ordered heat-sink side first.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStack {
    die_w_mm: f64,
    die_h_mm: f64,
    layers: Vec<Layer>,
}

impl LayerStack {
    /// Builds a stack over a `die_w × die_h` mm footprint.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is not positive.
    pub fn new(die_w_mm: f64, die_h_mm: f64) -> Self {
        assert!(
            die_w_mm > 0.0 && die_h_mm > 0.0,
            "die footprint must be positive"
        );
        LayerStack {
            die_w_mm,
            die_h_mm,
            layers: Vec::new(),
        }
    }

    /// Appends a layer (building from the heat sink downwards).
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The layers, heat-sink side first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Die footprint in mm.
    pub fn die_dims_mm(&self) -> (f64, f64) {
        (self.die_w_mm, self.die_h_mm)
    }

    /// Index of the layer with the given name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name() == name)
    }

    /// Total power injected by all active layers.
    pub fn total_power(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(|l| l.power.as_ref())
            .map(PowerGrid::total)
            .sum()
    }

    /// A copy with one layer's conductivity replaced (Fig. 3 sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::UnknownLayer`] if no layer has that name.
    pub fn with_layer_conductivity(
        &self,
        name: &str,
        k: Conductivity,
    ) -> Result<LayerStack, SolveError> {
        let idx = self
            .layer_index(name)
            .ok_or_else(|| SolveError::UnknownLayer { name: name.into() })?;
        let mut s = self.clone();
        s.layers[idx] = s.layers[idx].with_conductivity(k);
        Ok(s)
    }

    /// The standard planar (single-die) desktop stack of Fig. 2: heat sink,
    /// IHS, TIM, bulk Si, active Si (with the die's power map), Cu metal,
    /// C4/underfill, package, socket, motherboard.
    pub fn planar(die_w_mm: f64, die_h_mm: f64, power: PowerGrid) -> LayerStack {
        let mut s = LayerStack::new(die_w_mm, die_h_mm);
        s.push(Layer::passive_anisotropic(
            "heat sink",
            thickness::HEAT_SINK,
            materials::HEAT_SINK.k,
            SPREADING_K,
        ))
        .push(Layer::passive_anisotropic(
            "ihs",
            thickness::IHS,
            materials::IHS.k,
            SPREADING_K,
        ))
        .push(Layer::passive("tim", thickness::TIM, materials::TIM.k))
        .push(Layer::passive(
            "bulk si 1",
            thickness::SI_1,
            materials::SILICON.k,
        ))
        .push(Layer::active(
            "active 1",
            thickness::ACTIVE,
            materials::SILICON.k,
            power,
        ))
        .push(Layer::passive(
            "cu metal 1",
            thickness::CU_METAL,
            materials::CU_METAL.k,
        ))
        .push(Layer::passive(
            "underfill",
            thickness::UNDERFILL,
            materials::UNDERFILL.k,
        ))
        .push(Layer::passive(
            "package",
            thickness::PACKAGE,
            materials::PACKAGE.k,
        ))
        .push(Layer::passive(
            "socket",
            thickness::SOCKET,
            materials::SOCKET.k,
        ))
        .push(Layer::passive(
            "motherboard",
            thickness::MOTHERBOARD,
            materials::MOTHERBOARD.k,
        ));
        s
    }

    /// The face-to-face two-die stack of Fig. 1. `near` is the die next to
    /// the heat sink (the paper puts the highest-power die there); `far` is
    /// the thinned die next to the C4 bumps. `far_is_dram` selects the Al
    /// (DRAM) metal stack for the far die, else Cu.
    pub fn two_die(
        die_w_mm: f64,
        die_h_mm: f64,
        near: PowerGrid,
        far: PowerGrid,
        far_is_dram: bool,
    ) -> LayerStack {
        let (far_metal_t, far_metal_k, far_metal_name) = if far_is_dram {
            (thickness::AL_METAL, materials::AL_METAL.k, "al metal 2")
        } else {
            (thickness::CU_METAL, materials::CU_METAL.k, "cu metal 2")
        };
        let mut s = LayerStack::new(die_w_mm, die_h_mm);
        s.push(Layer::passive_anisotropic(
            "heat sink",
            thickness::HEAT_SINK,
            materials::HEAT_SINK.k,
            SPREADING_K,
        ))
        .push(Layer::passive_anisotropic(
            "ihs",
            thickness::IHS,
            materials::IHS.k,
            SPREADING_K,
        ))
        .push(Layer::passive("tim", thickness::TIM, materials::TIM.k))
        .push(Layer::passive(
            "bulk si 1",
            thickness::SI_1,
            materials::SILICON.k,
        ))
        .push(Layer::active(
            "active 1",
            thickness::ACTIVE,
            materials::SILICON.k,
            near,
        ))
        .push(Layer::passive(
            "cu metal 1",
            thickness::CU_METAL,
            materials::CU_METAL.k,
        ))
        .push(Layer::passive("bond", thickness::BOND, materials::BOND.k))
        .push(Layer::passive(far_metal_name, far_metal_t, far_metal_k))
        .push(Layer::active(
            "active 2",
            thickness::ACTIVE,
            materials::SILICON.k,
            far,
        ))
        .push(Layer::passive(
            "bulk si 2",
            thickness::SI_2,
            materials::SILICON.k,
        ))
        .push(Layer::passive(
            "underfill",
            thickness::UNDERFILL,
            materials::UNDERFILL.k,
        ))
        .push(Layer::passive(
            "package",
            thickness::PACKAGE,
            materials::PACKAGE.k,
        ))
        .push(Layer::passive(
            "socket",
            thickness::SOCKET,
            materials::SOCKET.k,
        ))
        .push(Layer::passive(
            "motherboard",
            thickness::MOTHERBOARD,
            materials::MOTHERBOARD.k,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: f64) -> PowerGrid {
        let mut g = PowerGrid::zero(4, 4, 13.0, 11.0);
        g.add(1, 1, w);
        g
    }

    #[test]
    fn planar_stack_has_one_active_layer() {
        let s = LayerStack::planar(13.0, 11.0, grid(92.0));
        let actives = s.layers().iter().filter(|l| l.power().is_some()).count();
        assert_eq!(actives, 1);
        assert!((s.total_power() - 92.0).abs() < 1e-9);
        assert!(s.layer_index("heat sink").unwrap() < s.layer_index("motherboard").unwrap());
    }

    #[test]
    fn two_die_stack_layers_follow_fig1() {
        let s = LayerStack::two_die(13.0, 11.0, grid(92.0), grid(3.1), true);
        let names: Vec<&str> = s.layers().iter().map(Layer::name).collect();
        // face-to-face: metal 1, bond, metal 2 between the two active layers
        let a1 = s.layer_index("active 1").unwrap();
        let m1 = s.layer_index("cu metal 1").unwrap();
        let bond = s.layer_index("bond").unwrap();
        let m2 = s.layer_index("al metal 2").unwrap();
        let a2 = s.layer_index("active 2").unwrap();
        assert!(
            a1 < m1 && m1 < bond && bond < m2 && m2 < a2,
            "order: {names:?}"
        );
        assert!((s.total_power() - 95.1).abs() < 1e-9);
    }

    #[test]
    fn dram_die_uses_al_metal() {
        let dram = LayerStack::two_die(13.0, 11.0, grid(1.0), grid(1.0), true);
        assert!(dram.layer_index("al metal 2").is_some());
        let logic = LayerStack::two_die(13.0, 11.0, grid(1.0), grid(1.0), false);
        assert!(logic.layer_index("cu metal 2").is_some());
    }

    #[test]
    fn conductivity_sweep_replaces_one_layer() {
        let s = LayerStack::planar(13.0, 11.0, grid(10.0));
        let swept = s.with_layer_conductivity("cu metal 1", 3.0).unwrap();
        let idx = swept.layer_index("cu metal 1").unwrap();
        assert_eq!(swept.layers()[idx].conductivity(), 3.0);
        assert_eq!(s.layers()[idx].conductivity(), 12.0, "original untouched");
    }

    #[test]
    fn sweeping_missing_layer_is_a_typed_error() {
        let s = LayerStack::planar(13.0, 11.0, grid(1.0));
        let err = s.with_layer_conductivity("nope", 1.0).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }
}
