//! Conductivity sensitivity sweeps (Fig. 3 of the paper).

use crate::solver::{solve_with_stats, SolveError, SolveStats, SolverConfig};
use crate::stack::{Boundary, LayerStack};

/// One sweep point: the conductivity tried and the resulting peak
/// temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Conductivity in W/mK.
    pub k: f64,
    /// Peak stack temperature in °C.
    pub peak_c: f64,
}

/// Sweeps one layer's thermal conductivity and records the peak temperature
/// at each point — the Fig. 3 experiment for the "Cu metal layers" and
/// "Bonding layer" curves.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if `layer` names no layer in the stack.
pub fn conductivity_sweep(
    stack: &LayerStack,
    layer: &str,
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<Vec<SweepPoint>, SolveError> {
    Ok(conductivity_sweep_stats(stack, layer, ks, bc, cfg)?.0)
}

/// [`conductivity_sweep`], also returning the accumulated CG statistics
/// of every solve in the sweep.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if `layer` names no layer in the stack.
pub fn conductivity_sweep_stats(
    stack: &LayerStack,
    layer: &str,
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<(Vec<SweepPoint>, SolveStats), SolveError> {
    let mut out = Vec::with_capacity(ks.len());
    let mut stats = SolveStats::default();
    for &k in ks {
        let swept = stack.with_layer_conductivity(layer, k);
        let sol = solve_with_stats(&swept, bc, cfg)?;
        stats.absorb(sol.stats);
        out.push(SweepPoint {
            k,
            peak_c: sol.field.peak(),
        });
    }
    Ok((out, stats))
}

/// Sweeps several layers' conductivities together — Fig. 3's "Cu metal
/// layers" curve varies the metal stacks of *both* dies at once.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if any name is missing from the stack.
pub fn conductivity_sweep_multi(
    stack: &LayerStack,
    layers: &[&str],
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<Vec<SweepPoint>, SolveError> {
    Ok(conductivity_sweep_multi_stats(stack, layers, ks, bc, cfg)?.0)
}

/// [`conductivity_sweep_multi`], also returning the accumulated CG
/// statistics of every solve in the sweep.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if any name is missing from the stack.
pub fn conductivity_sweep_multi_stats(
    stack: &LayerStack,
    layers: &[&str],
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<(Vec<SweepPoint>, SolveStats), SolveError> {
    let mut out = Vec::with_capacity(ks.len());
    let mut stats = SolveStats::default();
    for &k in ks {
        let mut swept = stack.clone();
        for name in layers {
            swept = swept.with_layer_conductivity(name, k);
        }
        let sol = solve_with_stats(&swept, bc, cfg)?;
        stats.absorb(sol.stats);
        out.push(SweepPoint {
            k,
            peak_c: sol.field.peak(),
        });
    }
    Ok((out, stats))
}

/// The conductivity grid used by Fig. 3 (60 down to 3 W/mK).
pub fn fig3_conductivities() -> Vec<f64> {
    vec![60.0, 40.0, 30.0, 20.0, 12.0, 9.0, 6.0, 3.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Layer;
    use stacksim_floorplan::PowerGrid;

    fn stack() -> LayerStack {
        let mut g = PowerGrid::zero(4, 4, 10.0, 10.0);
        g.add(1, 1, 30.0);
        let mut s = LayerStack::new(10.0, 10.0);
        s.push(Layer::passive("lid", 1e-3, 200.0));
        s.push(Layer::active("die", 0.5e-3, 120.0, g));
        s.push(Layer::passive("metal", 12e-6, 12.0));
        s.push(Layer::passive("base", 1e-3, 1.0));
        s
    }

    #[test]
    fn lower_conductivity_raises_peak_monotonically() {
        let bc = Boundary {
            h_top: 10.0,
            h_bottom: 2000.0,
            ambient: 40.0,
        };
        // heat must exit through the *bottom*, crossing the swept metal
        let cfg = SolverConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        };
        let pts = conductivity_sweep(&stack(), "metal", &[60.0, 12.0, 3.0], bc, cfg).unwrap();
        assert_eq!(pts.len(), 3);
        assert!(pts[0].peak_c < pts[1].peak_c);
        assert!(pts[1].peak_c < pts[2].peak_c);
    }

    #[test]
    fn fig3_grid_spans_60_to_3() {
        let ks = fig3_conductivities();
        assert_eq!(*ks.first().unwrap(), 60.0);
        assert_eq!(*ks.last().unwrap(), 3.0);
        assert!(ks.contains(&12.0), "the actual Cu metal value");
    }
}
