//! Conductivity sensitivity sweeps (Fig. 3 of the paper).

use crate::field::TemperatureField;
use crate::solver::{SolveError, SolveStats, SolverConfig, System};
use crate::stack::{Boundary, LayerStack};

/// Solves one sweep point, warm-starting from the previous point's field
/// when one is available. Consecutive sweep points differ only in one
/// layer's conductivity, so the previous solution is an excellent initial
/// guess and CG converges in a fraction of the cold-start iterations.
fn solve_point(
    stack: &LayerStack,
    bc: Boundary,
    cfg: SolverConfig,
    prev: Option<&TemperatureField>,
) -> Result<crate::solver::Solution, SolveError> {
    let system = System::assemble(stack, bc, cfg)?;
    match prev {
        Some(x0) if cfg.warm_start => system.steady_from(x0),
        _ => system.steady_with_stats(),
    }
}

/// Builds the warm-start guess for the sweep point at conductivity `k`
/// from the (up to two) most recent solutions, oldest first.
///
/// With one prior solution the guess is that field unchanged. With two,
/// the guess is the secant extrapolation in thermal resistance `1/k`: the
/// temperature drop across the swept layer is proportional to its
/// resistance, so each cell temperature is nearly affine in `1/k` and the
/// secant through the last two solutions lands far closer than the last
/// solution alone. On the Fig. 3 sweep this cuts the warm-start CG
/// iterations well below what plain chaining achieves; the converged
/// answer is unchanged up to the solver tolerance because the guess only
/// moves the starting point, never the system being solved.
fn warm_guess(hist: &[(f64, TemperatureField)], k: f64) -> Option<TemperatureField> {
    match hist {
        [] => None,
        [(_, f1)] => Some(f1.clone()),
        [.., (k0, f0), (k1, f1)] => {
            let t = (1.0 / k - 1.0 / k1) / (1.0 / k1 - 1.0 / k0);
            if !t.is_finite() {
                return Some(f1.clone());
            }
            let cells = f1
                .cells()
                .iter()
                .zip(f0.cells())
                .map(|(&a, &b)| t.mul_add(a - b, a))
                .collect();
            let (nx, ny) = f1.dims();
            Some(TemperatureField::from_parts(
                nx,
                ny,
                f1.layer_names().to_vec(),
                cells,
            ))
        }
    }
}

/// Pushes a solved point into the two-deep warm-start history.
fn remember(hist: &mut Vec<(f64, TemperatureField)>, k: f64, field: TemperatureField) {
    if hist.len() == 2 {
        hist.remove(0);
    }
    hist.push((k, field));
}

/// One sweep point: the conductivity tried and the resulting peak
/// temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Conductivity in W/mK.
    pub k: f64,
    /// Peak stack temperature in °C.
    pub peak_c: f64,
}

/// Sweeps one layer's thermal conductivity and records the peak temperature
/// at each point — the Fig. 3 experiment for the "Cu metal layers" and
/// "Bonding layer" curves.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if `layer` names no layer in the stack.
pub fn conductivity_sweep(
    stack: &LayerStack,
    layer: &str,
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<Vec<SweepPoint>, SolveError> {
    Ok(conductivity_sweep_stats(stack, layer, ks, bc, cfg)?.0)
}

/// [`conductivity_sweep`], also returning the accumulated CG statistics
/// of every solve in the sweep.
///
/// # Errors
///
/// Propagates the first solver failure, including
/// [`SolveError::UnknownLayer`] for a bad layer name.
pub fn conductivity_sweep_stats(
    stack: &LayerStack,
    layer: &str,
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<(Vec<SweepPoint>, SolveStats), SolveError> {
    let mut out = Vec::with_capacity(ks.len());
    let mut stats = SolveStats::default();
    let mut hist: Vec<(f64, TemperatureField)> = Vec::new();
    for &k in ks {
        let swept = stack.with_layer_conductivity(layer, k)?;
        let guess = warm_guess(&hist, k);
        let sol = solve_point(&swept, bc, cfg, guess.as_ref())?;
        stats.absorb(sol.stats);
        out.push(SweepPoint {
            k,
            peak_c: sol.field.peak(),
        });
        remember(&mut hist, k, sol.field);
    }
    Ok((out, stats))
}

/// Sweeps several layers' conductivities together — Fig. 3's "Cu metal
/// layers" curve varies the metal stacks of *both* dies at once.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if any name is missing from the stack.
pub fn conductivity_sweep_multi(
    stack: &LayerStack,
    layers: &[&str],
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<Vec<SweepPoint>, SolveError> {
    Ok(conductivity_sweep_multi_stats(stack, layers, ks, bc, cfg)?.0)
}

/// [`conductivity_sweep_multi`], also returning the accumulated CG
/// statistics of every solve in the sweep.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics if any name is missing from the stack.
pub fn conductivity_sweep_multi_stats(
    stack: &LayerStack,
    layers: &[&str],
    ks: &[f64],
    bc: Boundary,
    cfg: SolverConfig,
) -> Result<(Vec<SweepPoint>, SolveStats), SolveError> {
    let mut out = Vec::with_capacity(ks.len());
    let mut stats = SolveStats::default();
    let mut hist: Vec<(f64, TemperatureField)> = Vec::new();
    for &k in ks {
        let mut swept = stack.clone();
        for name in layers {
            swept = swept.with_layer_conductivity(name, k)?;
        }
        let guess = warm_guess(&hist, k);
        let sol = solve_point(&swept, bc, cfg, guess.as_ref())?;
        stats.absorb(sol.stats);
        out.push(SweepPoint {
            k,
            peak_c: sol.field.peak(),
        });
        remember(&mut hist, k, sol.field);
    }
    Ok((out, stats))
}

/// The conductivity grid used by Fig. 3 (60 down to 3 W/mK).
pub fn fig3_conductivities() -> Vec<f64> {
    vec![60.0, 40.0, 30.0, 20.0, 12.0, 9.0, 6.0, 3.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Layer;
    use stacksim_floorplan::PowerGrid;

    fn stack() -> LayerStack {
        let mut g = PowerGrid::zero(4, 4, 10.0, 10.0);
        g.add(1, 1, 30.0);
        let mut s = LayerStack::new(10.0, 10.0);
        s.push(Layer::passive("lid", 1e-3, 200.0));
        s.push(Layer::active("die", 0.5e-3, 120.0, g));
        s.push(Layer::passive("metal", 12e-6, 12.0));
        s.push(Layer::passive("base", 1e-3, 1.0));
        s
    }

    #[test]
    fn lower_conductivity_raises_peak_monotonically() {
        let bc = Boundary {
            h_top: 10.0,
            h_bottom: 2000.0,
            ambient: 40.0,
        };
        // heat must exit through the *bottom*, crossing the swept metal
        let cfg = SolverConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        };
        let pts = conductivity_sweep(&stack(), "metal", &[60.0, 12.0, 3.0], bc, cfg).unwrap();
        assert_eq!(pts.len(), 3);
        assert!(pts[0].peak_c < pts[1].peak_c);
        assert!(pts[1].peak_c < pts[2].peak_c);
    }

    /// Warm-starting each point from the previous field must beat solving
    /// every point cold from ambient.
    #[test]
    fn warm_started_sweep_does_less_cg_work_than_cold_solves() {
        let bc = Boundary {
            h_top: 10.0,
            h_bottom: 2000.0,
            ambient: 40.0,
        };
        let cfg = SolverConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        };
        let ks = [60.0, 40.0, 20.0, 12.0, 6.0, 3.0];
        let (_, warm) = conductivity_sweep_stats(&stack(), "metal", &ks, bc, cfg).unwrap();
        let mut cold = SolveStats::default();
        for &k in &ks {
            let swept = stack().with_layer_conductivity("metal", k).unwrap();
            cold.absorb(
                crate::solver::solve_with_stats(&swept, bc, cfg)
                    .unwrap()
                    .stats,
            );
        }
        assert_eq!(warm.solves, cold.solves);
        assert!(
            warm.iterations < cold.iterations,
            "warm sweep took {} iterations, cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn fig3_grid_spans_60_to_3() {
        let ks = fig3_conductivities();
        assert_eq!(*ks.first().unwrap(), 60.0);
        assert_eq!(*ks.last().unwrap(), 3.0);
        assert!(ks.contains(&12.0), "the actual Cu metal value");
    }
}
