//! Incremental construction of valid traces.

use crate::packed::PackedRecord;
use crate::record::{Addr, CpuId, MemOp, RecordId};
use crate::stream::Trace;

/// Builds a [`Trace`] while enforcing the id and dependency invariants.
///
/// Ids are assigned densely in insertion order. Dependencies are checked at
/// insertion time, so the resulting trace always passes
/// [`Trace::validate`]. Records are packed into the trace's fixed-width
/// storage as they are added — [`build`](TraceBuilder::build) is free.
///
/// # Example
///
/// ```
/// use stacksim_trace::{TraceBuilder, CpuId, MemOp};
///
/// let mut b = TraceBuilder::new();
/// let idx = b.record(CpuId::new(0), MemOp::Load, 0x8000, 0x400);
/// let val = b.record_dep(CpuId::new(0), MemOp::Load, 0xA000, 0x404, Some(idx));
/// b.record_dep(CpuId::new(0), MemOp::Store, 0xC000, 0x408, Some(val));
/// assert_eq!(b.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Creates a builder with pre-allocated capacity for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        TraceBuilder {
            trace: Trace::with_capacity(n),
        }
    }

    /// Number of records added so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no records have been added.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Id the next added record will receive.
    pub fn next_id(&self) -> RecordId {
        RecordId::new(self.trace.len() as u64)
    }

    /// Appends an independent record and returns its id.
    pub fn record(&mut self, cpu: CpuId, op: MemOp, addr: Addr, ip: Addr) -> RecordId {
        self.record_dep(cpu, op, addr, ip, None)
    }

    /// Appends a record with an optional dependency and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `dep` refers to a record that has not been added yet —
    /// dependencies must point strictly backwards — or if the dependency
    /// distance exceeds the packed-record range ([`u32::MAX`]).
    pub fn record_dep(
        &mut self,
        cpu: CpuId,
        op: MemOp,
        addr: Addr,
        ip: Addr,
        dep: Option<RecordId>,
    ) -> RecordId {
        let id = self.next_id();
        let dep_offset = match dep {
            None => 0,
            Some(d) => {
                assert!(
                    d < id,
                    "dependency {d} of record {id} must point to an earlier record"
                );
                let dist = id.raw() - d.raw();
                assert!(
                    dist <= u64::from(u32::MAX),
                    "dependency distance {dist} exceeds the packed-record range"
                );
                dist as u32
            }
        };
        self.trace
            .push(PackedRecord::new(cpu, op, addr, ip, dep_offset));
        id
    }

    /// Id of the most recently added record, if any. Convenient for chaining
    /// serially dependent accesses.
    pub fn last_id(&self) -> Option<RecordId> {
        self.trace
            .len()
            .checked_sub(1)
            .map(|i| RecordId::new(i as u64))
    }

    /// Finishes the builder, producing a validated [`Trace`].
    pub fn build(self) -> Trace {
        debug_assert!(self.trace.validate().is_ok());
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense() {
        let mut b = TraceBuilder::with_capacity(4);
        for i in 0..4u64 {
            let id = b.record(CpuId::new(0), MemOp::Load, i * 64, 0);
            assert_eq!(id.raw(), i);
        }
        assert_eq!(b.next_id().raw(), 4);
        let t = b.build();
        assert!(t.validate().is_ok());
    }

    #[test]
    fn last_id_tracks_insertions() {
        let mut b = TraceBuilder::new();
        assert_eq!(b.last_id(), None);
        let a = b.record(CpuId::new(0), MemOp::Load, 0, 0);
        assert_eq!(b.last_id(), Some(a));
    }

    #[test]
    #[should_panic(expected = "earlier record")]
    fn forward_dep_panics() {
        let mut b = TraceBuilder::new();
        b.record_dep(CpuId::new(0), MemOp::Load, 0, 0, Some(RecordId::new(5)));
    }

    #[test]
    #[should_panic(expected = "earlier record")]
    fn self_dep_panics() {
        let mut b = TraceBuilder::new();
        b.record_dep(CpuId::new(0), MemOp::Load, 0, 0, Some(RecordId::new(0)));
    }
}
