//! A bounded SPSC channel carrying blocks of packed records.
//!
//! This is the coupling between trace *generation* and trace *consumption*
//! in the generate-while-simulate pipeline: a kernel thread pushes
//! fixed-size `Vec<PackedRecord>` blocks while the simulator drains them,
//! so the two overlap instead of serialising. The bound keeps the
//! in-flight working set to a few blocks regardless of trace length.
//!
//! Determinism note: the channel carries *data*, never *ordering*. Block
//! contents are fully determined by the producer, and the consumer
//! interleaves streams in a fixed round-robin that only depends on those
//! contents — timing, buffering, and the capacity chosen here cannot
//! change the merged trace (see `DESIGN.md` §14).
//!
//! The implementation is a mutex + two condvars; there are no atomics and
//! no lock-free cleverness, so its correctness is the platform mutex's
//! correctness.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::packed::PackedRecord;

/// A block of packed records in flight between producer and consumer.
pub type RecordBlock = Vec<PackedRecord>;

struct Shared {
    state: Mutex<State>,
    /// Signalled when a block is enqueued or the sender goes away.
    not_empty: Condvar,
    /// Signalled when a block is dequeued or the receiver goes away.
    not_full: Condvar,
}

struct State {
    queue: VecDeque<RecordBlock>,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Creates a bounded block channel with room for `capacity` blocks.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn block_channel(capacity: usize) -> (BlockSender, BlockReceiver) {
    assert!(capacity > 0, "block channel capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            sender_alive: true,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        BlockSender {
            shared: Arc::clone(&shared),
            capacity,
        },
        BlockReceiver { shared },
    )
}

/// Producer half of a [`block_channel`].
pub struct BlockSender {
    shared: Arc<Shared>,
    capacity: usize,
}

impl std::fmt::Debug for BlockSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockSender")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl BlockSender {
    /// Enqueues a block, waiting while the channel is full. Returns `false`
    /// (discarding the block) if the receiver is gone, so an abandoned
    /// consumer lets the producer wind down instead of deadlocking.
    pub fn send(&self, block: RecordBlock) -> bool {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if !state.receiver_alive {
                return false;
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(block);
                drop(state);
                self.shared.not_empty.notify_one();
                return true;
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl Drop for BlockSender {
    fn drop(&mut self) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.sender_alive = false;
        drop(state);
        self.shared.not_empty.notify_all();
    }
}

/// Consumer half of a [`block_channel`].
pub struct BlockReceiver {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for BlockReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockReceiver").finish_non_exhaustive()
    }
}

impl BlockReceiver {
    /// Dequeues the next block, waiting while the channel is empty.
    /// Returns `None` once the sender is gone and the queue is drained.
    pub fn recv(&self) -> Option<RecordBlock> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(block) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(block);
            }
            if !state.sender_alive {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl Drop for BlockReceiver {
    fn drop(&mut self) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.receiver_alive = false;
        // let a blocked producer observe the hangup and bail out
        state.queue.clear();
        drop(state);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CpuId, MemOp};
    use std::thread;

    fn block(n: usize, base: u64) -> RecordBlock {
        (0..n)
            .map(|i| PackedRecord::new(CpuId::new(0), MemOp::Load, base + i as u64, 0, 0))
            .collect()
    }

    #[test]
    fn blocks_arrive_in_order() {
        let (tx, rx) = block_channel(2);
        let producer = thread::spawn(move || {
            for i in 0..10u64 {
                assert!(tx.send(block(3, i * 100)));
            }
        });
        let mut seen = Vec::new();
        while let Some(b) = rx.recv() {
            seen.push(b[0].addr);
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..10u64).map(|i| i * 100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_capacity_blocks_the_producer_not_the_data() {
        // capacity 1 forces strict alternation; everything still arrives
        let (tx, rx) = block_channel(1);
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                assert!(tx.send(block(1, i)));
            }
        });
        let mut n = 0u64;
        while let Some(b) = rx.recv() {
            assert_eq!(b[0].addr, n);
            n += 1;
        }
        producer.join().unwrap();
        assert_eq!(n, 100);
    }

    #[test]
    fn dropped_receiver_unblocks_the_sender() {
        let (tx, rx) = block_channel(1);
        assert!(tx.send(block(1, 0)));
        drop(rx);
        // channel is "full" but the hangup must still let the send return
        assert!(!tx.send(block(1, 1)));
    }

    #[test]
    fn recv_drains_queue_after_sender_drops() {
        let (tx, rx) = block_channel(4);
        assert!(tx.send(block(1, 7)));
        drop(tx);
        assert_eq!(rx.recv().unwrap()[0].addr, 7);
        assert!(rx.recv().is_none());
    }
}
