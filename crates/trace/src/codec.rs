//! A compact binary on-disk format for traces.
//!
//! Layout: an 8-byte header (`b"STKTRC"` magic, a format version byte and a
//! reserved byte) followed by one variable-length record encoding per trace
//! record. Within a record:
//!
//! * one byte packing the op tag (2 bits), a has-dependency flag (1 bit) and
//!   the cpu id's low 5 bits (cpu ids >= 32 spill into an extra byte),
//! * LEB128 deltas for address and instruction pointer (zig-zag against the
//!   previous record of the same cpu, which makes streaming accesses tiny),
//! * if the dependency flag is set, a LEB128 backwards distance to the
//!   dependency target.
//!
//! Record ids are implicit (dense in file order), so they are not stored.

use std::io::{self, Read, Write};

use crate::error::TraceError;
use crate::record::{CpuId, MemOp, RecordId, TraceRecord};
use crate::stream::Trace;

const MAGIC: &[u8; 6] = b"STKTRC";
const VERSION: u8 = 1;
/// Cpu ids below this fit into the flag byte.
const INLINE_CPU_LIMIT: u8 = 32;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        match r.read_exact(&mut buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated)
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        v |= u64::from(buf[0] & 0x7f) << shift;
        if buf[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceError::Truncated);
        }
    }
}

const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serialises a trace to a writer in the `STKTRC` v1 binary format.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceError> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION, 0])?;
    write_varint(&mut w, trace.len() as u64)?;
    // previous addr/ip per cpu for delta encoding
    let mut prev_addr = vec![0u64; trace.cpu_count().max(1)];
    let mut prev_ip = vec![0u64; trace.cpu_count().max(1)];
    for r in trace.iter() {
        let cpu = r.cpu.raw();
        let inline_cpu = if cpu < INLINE_CPU_LIMIT {
            cpu
        } else {
            INLINE_CPU_LIMIT - 1
        };
        let mut flags = r.op.tag() | (inline_cpu << 3);
        if r.dep.is_some() {
            flags |= 0x04;
        }
        w.write_all(&[flags])?;
        if cpu >= INLINE_CPU_LIMIT - 1 {
            w.write_all(&[cpu])?;
        }
        let ci = r.cpu.index();
        if ci >= prev_addr.len() {
            prev_addr.resize(ci + 1, 0);
            prev_ip.resize(ci + 1, 0);
        }
        write_varint(&mut w, zigzag(r.addr.wrapping_sub(prev_addr[ci]) as i64))?;
        write_varint(&mut w, zigzag(r.ip.wrapping_sub(prev_ip[ci]) as i64))?;
        prev_addr[ci] = r.addr;
        prev_ip[ci] = r.ip;
        if let Some(dep) = r.dep {
            write_varint(&mut w, r.id.raw() - dep.raw())?;
        }
    }
    Ok(())
}

/// Deserialises a trace previously written by [`write_trace`].
///
/// A `&mut` reference can be passed as the reader. The decoded trace is
/// validated before being returned.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`],
/// [`TraceError::Truncated`], [`TraceError::BadOpTag`] on malformed input,
/// or an I/O error from the reader.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    })?;
    if &header[..6] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    if header[6] != VERSION {
        return Err(TraceError::UnsupportedVersion(header[6]));
    }
    let n = read_varint(&mut r)? as usize;
    let mut records = Vec::with_capacity(n.min(1 << 24));
    let mut prev_addr: Vec<u64> = Vec::new();
    let mut prev_ip: Vec<u64> = Vec::new();
    for i in 0..n as u64 {
        let mut flags = [0u8; 1];
        match r.read_exact(&mut flags) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated)
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        let flags = flags[0];
        let op = MemOp::from_tag(flags & 0x03).ok_or(TraceError::BadOpTag(flags & 0x03))?;
        let has_dep = flags & 0x04 != 0;
        let inline_cpu = flags >> 3;
        let cpu = if inline_cpu == INLINE_CPU_LIMIT - 1 {
            let mut b = [0u8; 1];
            r.read_exact(&mut b).map_err(|_| TraceError::Truncated)?;
            b[0]
        } else {
            inline_cpu
        };
        let ci = cpu as usize;
        if ci >= prev_addr.len() {
            prev_addr.resize(ci + 1, 0);
            prev_ip.resize(ci + 1, 0);
        }
        let addr = prev_addr[ci].wrapping_add(unzigzag(read_varint(&mut r)?) as u64);
        let ip = prev_ip[ci].wrapping_add(unzigzag(read_varint(&mut r)?) as u64);
        prev_addr[ci] = addr;
        prev_ip[ci] = ip;
        let dep = if has_dep {
            let dist = read_varint(&mut r)?;
            if dist == 0 || dist > i {
                return Err(TraceError::ForwardDependency {
                    record: RecordId::new(i),
                    dep: RecordId::new(i.wrapping_sub(dist)),
                });
            }
            Some(RecordId::new(i - dist))
        } else {
            None
        };
        records.push(TraceRecord {
            id: RecordId::new(i),
            cpu: CpuId::new(cpu),
            op,
            addr,
            ip,
            dep,
        });
    }
    let t = Trace::from_records(records);
    t.validate()?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn roundtrip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, t).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn mixed_trace_roundtrips() {
        let mut b = TraceBuilder::new();
        let a = b.record(CpuId::new(0), MemOp::Load, 0xdead_beef_0000, 0x40_0000);
        b.record_dep(CpuId::new(1), MemOp::Store, 0x10, 0x40_0004, Some(a));
        b.record(CpuId::new(0), MemOp::IFetch, 0xdead_beef_0040, 0x40_0008);
        let prev = b.last_id();
        b.record_dep(
            CpuId::new(1),
            MemOp::Load,
            0x4000_0000_0000,
            0x40_000c,
            prev,
        );
        let t = b.build();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn large_cpu_ids_roundtrip() {
        let mut b = TraceBuilder::new();
        b.record(CpuId::new(200), MemOp::Load, 0x1000, 0x2000);
        b.record(CpuId::new(31), MemOp::Store, 0x3000, 0x4000);
        let t = b.build();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn sequential_stream_compresses_well() {
        let mut b = TraceBuilder::new();
        for i in 0..10_000u64 {
            b.record(CpuId::new(0), MemOp::Load, 0x1_0000 + i * 64, 0x400);
        }
        let t = b.build();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        // flag byte + 1-2 byte addr delta + 1 byte ip delta
        assert!(
            buf.len() < t.len() * 5,
            "encoded {} bytes for {} records",
            buf.len(),
            t.len()
        );
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOTTRC\x01\x00".to_vec();
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new()).unwrap();
        buf[6] = 99;
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let mut b = TraceBuilder::new();
        for i in 0..100u64 {
            b.record(CpuId::new(0), MemOp::Load, i * 4096, i);
        }
        let t = b.build();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123456, -987654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
