//! Error type for trace construction, validation and (de)serialisation.

use std::error::Error;
use std::fmt;
use std::io;

use crate::record::RecordId;

/// Errors produced while building, validating or decoding traces.
#[derive(Debug)]
pub enum TraceError {
    /// A record depends on a record with an equal or later id.
    ForwardDependency {
        /// The offending record.
        record: RecordId,
        /// The (invalid) dependency target.
        dep: RecordId,
    },
    /// Record ids are not dense and monotonically increasing from zero.
    NonMonotonicId {
        /// Index in the trace at which the mismatch was found.
        position: u64,
        /// The id actually found there.
        found: RecordId,
    },
    /// The binary stream did not start with the expected magic bytes.
    BadMagic,
    /// The binary stream uses an unsupported format version.
    UnsupportedVersion(u8),
    /// An operation tag in the binary stream was invalid.
    BadOpTag(u8),
    /// The binary stream ended in the middle of a record.
    Truncated,
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ForwardDependency { record, dep } => {
                write!(f, "record {record} depends on non-earlier record {dep}")
            }
            TraceError::NonMonotonicId { position, found } => {
                write!(
                    f,
                    "record at position {position} has id {found}, expected #{position}"
                )
            }
            TraceError::BadMagic => write!(f, "stream does not start with trace magic"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace format version {v}"),
            TraceError::BadOpTag(t) => write!(f, "invalid memory operation tag {t}"),
            TraceError::Truncated => write!(f, "trace stream ended mid-record"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<TraceError> = vec![
            TraceError::ForwardDependency {
                record: RecordId::new(1),
                dep: RecordId::new(2),
            },
            TraceError::NonMonotonicId {
                position: 3,
                found: RecordId::new(7),
            },
            TraceError::BadMagic,
            TraceError::UnsupportedVersion(9),
            TraceError::BadOpTag(200),
            TraceError::Truncated,
            TraceError::Io(io::Error::other("boom")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let e = TraceError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
    }
}
