//! Merging per-thread traces into one multi-processor trace.

use crate::packed::PackedRecord;
use crate::record::CpuId;
use crate::stream::Trace;

/// Interleaves several per-thread traces round-robin into one SMP trace.
///
/// Thread `i`'s records are re-labelled `cpu i`, ids are re-assigned densely
/// in the merged order, and dependency edges are remapped so they still point
/// at the same logical record. The round-robin granularity is `chunk`
/// records, modelling threads making roughly even forward progress, as in the
/// paper's two-threaded RMS traces.
///
/// The merge runs entirely on packed storage: per-thread dependency offsets
/// are rewritten to merged-order offsets through a per-thread position map,
/// no wide records are materialised.
///
/// # Panics
///
/// Panics if `chunk` is 0, more than 256 threads are supplied, or the
/// merged trace would reach [`u32::MAX`] records (beyond the packed
/// dependency-offset range).
///
/// # Example
///
/// ```
/// use stacksim_trace::{interleave, TraceBuilder, CpuId, MemOp};
///
/// let mut t0 = TraceBuilder::new();
/// t0.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
/// let mut t1 = TraceBuilder::new();
/// t1.record(CpuId::new(0), MemOp::Load, 0x2000, 0);
/// let merged = interleave(&[t0.build(), t1.build()], 1);
/// assert_eq!(merged.len(), 2);
/// assert_eq!(merged.cpu_count(), 2);
/// ```
pub fn interleave(threads: &[Trace], chunk: usize) -> Trace {
    assert!(chunk > 0, "interleave chunk must be positive");
    assert!(threads.len() <= 256, "at most 256 threads supported");
    let total: usize = threads.iter().map(Trace::len).sum();
    assert!(
        total < u32::MAX as usize,
        "merged trace would exceed the packed dependency-offset range"
    );
    let mut out = Trace::with_capacity(total);
    // merged position of each source record, per thread
    let mut maps: Vec<Vec<u32>> = threads
        .iter()
        .map(|t| Vec::with_capacity(t.len()))
        .collect();
    let mut cursors = vec![0usize; threads.len()];
    loop {
        let mut progressed = false;
        for (ti, t) in threads.iter().enumerate() {
            let start = cursors[ti];
            let end = (start + chunk).min(t.len());
            for (src, p) in t.packed()[start..end].iter().enumerate() {
                let src = start + src;
                let new_pos = out.len() as u32;
                maps[ti].push(new_pos);
                let dep_offset = if p.has_dep() {
                    new_pos - maps[ti][src - p.dep_offset() as usize]
                } else {
                    0
                };
                out.push(PackedRecord::new(
                    CpuId::new(ti as u8),
                    p.op(),
                    p.addr,
                    p.ip,
                    dep_offset,
                ));
            }
            if end > start {
                progressed = true;
            }
            cursors[ti] = end;
        }
        if !progressed {
            break;
        }
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::MemOp;

    fn thread(n: u64, base: u64) -> Trace {
        let mut b = TraceBuilder::new();
        let mut prev = None;
        for i in 0..n {
            prev = Some(b.record_dep(CpuId::new(0), MemOp::Load, base + i * 64, 0, prev));
        }
        b.build()
    }

    #[test]
    fn preserves_all_records() {
        let merged = interleave(&[thread(10, 0), thread(7, 0x10000)], 3);
        assert_eq!(merged.len(), 17);
        assert!(merged.validate().is_ok());
        assert_eq!(merged.cpu_count(), 2);
    }

    #[test]
    fn relabels_cpus() {
        let merged = interleave(&[thread(2, 0), thread(2, 0x1000)], 1);
        let cpus: Vec<u8> = merged.iter().map(|r| r.cpu.raw()).collect();
        assert_eq!(cpus, vec![0, 1, 0, 1]);
    }

    #[test]
    fn remaps_dependencies_within_thread() {
        let merged = interleave(&[thread(3, 0), thread(3, 0x1000)], 1);
        // each thread is a serial chain; after merging, every dependent record
        // must still point at the previous record of the *same* cpu
        for r in merged.iter() {
            if let Some(dep) = r.dep {
                let target = merged.get(dep).unwrap();
                assert_eq!(target.cpu, r.cpu);
                assert_eq!(target.addr + 64, r.addr);
            }
        }
    }

    #[test]
    fn uneven_threads_drain_completely() {
        let merged = interleave(&[thread(1, 0), thread(20, 0x1000)], 4);
        assert_eq!(merged.len(), 21);
        assert!(merged.validate().is_ok());
    }

    #[test]
    fn empty_inputs_yield_empty_trace() {
        let merged = interleave(&[], 1);
        assert!(merged.is_empty());
        let merged = interleave(&[Trace::new(), Trace::new()], 8);
        assert!(merged.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_panics() {
        let _ = interleave(&[Trace::new()], 0);
    }
}
