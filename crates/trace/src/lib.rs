//! Dependency-annotated memory trace records and streams.
//!
//! This crate implements the trace format described in §2.1 of
//! *Die Stacking (3D) Microarchitecture* (Black et al., MICRO 2006).
//! Every record describes one dynamic memory instruction and carries:
//!
//! * the id of the CPU that executed it,
//! * the memory access address and the instruction pointer,
//! * a unique, monotonically increasing identification number, and
//! * optionally the identification number of an **earlier** record this
//!   record depends on.
//!
//! The downstream memory-hierarchy simulator (`stacksim-mem`) honours the
//! dependency edges: a record is only issued once the record it depends on
//! has completed, which is what makes *cycles per memory access* (CPMA)
//! sensitive to memory latency rather than just miss counts.
//!
//! # Example
//!
//! ```
//! use stacksim_trace::{TraceBuilder, CpuId, MemOp};
//!
//! let mut b = TraceBuilder::new();
//! let a = b.record(CpuId::new(0), MemOp::Load, 0x1000, 0x400);
//! // the second load consumes the value produced through the first one
//! b.record_dep(CpuId::new(0), MemOp::Load, 0x2000, 0x404, Some(a));
//! let trace = b.build();
//! assert_eq!(trace.len(), 2);
//! assert!(trace.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod chan;
mod codec;
mod error;
mod interleave;
mod packed;
mod record;
mod sink;
mod stats;
mod stream;

pub use builder::TraceBuilder;
pub use chan::{block_channel, BlockReceiver, BlockSender, RecordBlock};
pub use codec::{read_trace, write_trace};
pub use error::TraceError;
pub use interleave::interleave;
pub use packed::PackedRecord;
pub use record::{Addr, CpuId, MemOp, RecordId, TraceRecord};
pub use sink::{RecordSink, StreamBuilder};
pub use stats::{DepStats, FootprintStats, TraceStats};
pub use stream::{Trace, TraceIntoIter, TraceIter};
