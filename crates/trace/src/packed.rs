//! The fixed-width packed record the hot paths run on.
//!
//! [`TraceRecord`] is ergonomic but wide: a 16-byte `Option<RecordId>` for
//! the dependency, a niche-less enum for the op, and an explicit id that is
//! always equal to the record's position. [`PackedRecord`] is the same
//! information in 24 bytes of plain-old-data:
//!
//! ```text
//!  bytes 0..8   addr  (u64)
//!  bytes 8..16  ip    (u64)
//!  bytes 16..20 dep   (u32)  backward distance to the dependency; 0 = none
//!  bytes 20..24 tag   (u32)  bits 0..2 = op tag, bits 8..16 = cpu id
//! ```
//!
//! The id is implicit (a record's position in its trace), the dependency is
//! a bounded backward offset, and decoding any field is shift-and-mask work
//! with no `Option` or enum matching — the engine's issue loop reads
//! `addr`, `op`, `cpu` and `dep_offset` straight out of the word.

use crate::record::{Addr, CpuId, MemOp, RecordId, TraceRecord};

/// One memory reference in the fixed-width packed layout.
///
/// Constructed via [`PackedRecord::new`] (which encodes the tag word) or by
/// packing a [`TraceRecord`]; the op bits are therefore always a valid
/// [`MemOp`] tag.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedRecord {
    /// Memory access address (byte granularity).
    pub addr: Addr,
    /// Instruction pointer of the accessing instruction.
    pub ip: Addr,
    dep: u32,
    tag: u32,
}

impl PackedRecord {
    /// Packs one record. `dep_offset` is the backward distance to the
    /// dependency (`id - dep_id`), or 0 for an independent record.
    #[inline]
    pub fn new(cpu: CpuId, op: MemOp, addr: Addr, ip: Addr, dep_offset: u32) -> Self {
        PackedRecord {
            addr,
            ip,
            dep: dep_offset,
            tag: u32::from(op.tag()) | (u32::from(cpu.raw()) << 8),
        }
    }

    /// The memory operation kind.
    #[inline]
    pub fn op(self) -> MemOp {
        // Constructed only through `new`, so the two op bits always carry a
        // valid tag; map the impossible fourth pattern to IFetch instead of
        // branching into a panic path.
        match self.tag & 0x3 {
            0 => MemOp::Load,
            1 => MemOp::Store,
            _ => MemOp::IFetch,
        }
    }

    /// The CPU that executed the access.
    #[inline]
    pub fn cpu(self) -> CpuId {
        CpuId::new((self.tag >> 8) as u8)
    }

    /// Backward distance to the dependency; 0 means the record is
    /// independent.
    #[inline]
    pub fn dep_offset(self) -> u32 {
        self.dep
    }

    /// Whether the record carries a dependency edge.
    #[inline]
    pub fn has_dep(self) -> bool {
        self.dep != 0
    }

    /// Expands into a [`TraceRecord`], given the record's position `id` in
    /// its stream.
    #[inline]
    pub fn unpack(self, id: u64) -> TraceRecord {
        TraceRecord {
            id: RecordId::new(id),
            cpu: self.cpu(),
            op: self.op(),
            addr: self.addr,
            ip: self.ip,
            dep: if self.dep == 0 {
                None
            } else {
                Some(RecordId::new(id - u64::from(self.dep)))
            },
        }
    }

    /// Packs a [`TraceRecord`] sitting at position `index` of its stream.
    /// The record's own `id` field is ignored; the caller is responsible
    /// for checking it (see `Trace::from_records`).
    ///
    /// # Panics
    ///
    /// Panics if the dependency does not point strictly backwards or its
    /// distance exceeds [`u32::MAX`] (traces beyond that dependency span
    /// cannot use the packed layout).
    #[inline]
    pub fn pack_at(index: u64, r: &TraceRecord) -> Self {
        let dep_offset = match r.dep {
            None => 0,
            Some(d) => {
                assert!(
                    d.raw() < index,
                    "dependency {d} of the record at position {index} must point backwards"
                );
                let dist = index - d.raw();
                assert!(
                    dist <= u64::from(u32::MAX),
                    "dependency distance {dist} exceeds the packed-record range"
                );
                dist as u32
            }
        };
        PackedRecord::new(r.cpu, r.op, r.addr, r.ip, dep_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_record_is_24_bytes() {
        assert_eq!(std::mem::size_of::<PackedRecord>(), 24);
    }

    #[test]
    fn roundtrips_all_ops_and_cpus() {
        for op in [MemOp::Load, MemOp::Store, MemOp::IFetch] {
            for cpu in [0u8, 1, 31, 255] {
                let r = TraceRecord {
                    id: RecordId::new(10),
                    cpu: CpuId::new(cpu),
                    op,
                    addr: 0xdead_beef_1234,
                    ip: 0x40_0000,
                    dep: Some(RecordId::new(3)),
                };
                let p = PackedRecord::pack_at(10, &r);
                assert_eq!(p.unpack(10), r);
            }
        }
    }

    #[test]
    fn independent_record_has_zero_offset() {
        let r = TraceRecord {
            id: RecordId::new(5),
            cpu: CpuId::new(0),
            op: MemOp::Load,
            addr: 0,
            ip: 0,
            dep: None,
        };
        let p = PackedRecord::pack_at(5, &r);
        assert!(!p.has_dep());
        assert_eq!(p.dep_offset(), 0);
        assert_eq!(p.unpack(5).dep, None);
    }

    #[test]
    fn max_range_offset_roundtrips() {
        let id = u64::from(u32::MAX) + 7;
        let r = TraceRecord {
            id: RecordId::new(id),
            cpu: CpuId::new(1),
            op: MemOp::Store,
            addr: 1,
            ip: 2,
            dep: Some(RecordId::new(7)),
        };
        let p = PackedRecord::pack_at(id, &r);
        assert_eq!(p.dep_offset(), u32::MAX);
        assert_eq!(p.unpack(id), r);
    }

    #[test]
    #[should_panic(expected = "point backwards")]
    fn forward_dep_panics() {
        let r = TraceRecord {
            id: RecordId::new(5),
            cpu: CpuId::new(0),
            op: MemOp::Load,
            addr: 0,
            ip: 0,
            dep: Some(RecordId::new(5)),
        };
        let _ = PackedRecord::pack_at(5, &r);
    }
}
