//! The trace record and its field newtypes.

use std::fmt;

/// Unique, monotonically increasing identification number of a trace record.
///
/// Ids are assigned by [`TraceBuilder`](crate::TraceBuilder) in program
/// order; a record may only depend on a record with a *smaller* id, which
/// keeps the dependency graph acyclic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(u64);

impl RecordId {
    /// Creates a record id from its raw index.
    pub const fn new(raw: u64) -> Self {
        RecordId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the id usable as a `Vec` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for RecordId {
    fn from(raw: u64) -> Self {
        RecordId(raw)
    }
}

/// Identifier of the CPU that executed a memory instruction.
///
/// The paper's study simulates a two-processor SMP system, but the format
/// supports up to 256 CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(u8);

impl CpuId {
    /// Creates a CPU id.
    pub const fn new(raw: u8) -> Self {
        CpuId(raw)
    }

    /// Returns the raw id.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Returns the id usable as a `Vec` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u8> for CpuId {
    fn from(raw: u8) -> Self {
        CpuId(raw)
    }
}

/// A byte address in the simulated physical address space.
pub type Addr = u64;

/// The kind of memory operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// An instruction fetch.
    IFetch,
}

impl MemOp {
    /// Whether the operation reads data (loads and instruction fetches).
    pub const fn is_read(self) -> bool {
        matches!(self, MemOp::Load | MemOp::IFetch)
    }

    /// Whether the operation writes data.
    pub const fn is_write(self) -> bool {
        matches!(self, MemOp::Store)
    }

    /// A compact tag used by the binary codec.
    pub(crate) const fn tag(self) -> u8 {
        match self {
            MemOp::Load => 0,
            MemOp::Store => 1,
            MemOp::IFetch => 2,
        }
    }

    /// Inverse of [`MemOp::tag`].
    pub(crate) const fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(MemOp::Load),
            1 => Some(MemOp::Store),
            2 => Some(MemOp::IFetch),
            _ => None,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOp::Load => "load",
            MemOp::Store => "store",
            MemOp::IFetch => "ifetch",
        };
        f.write_str(s)
    }
}

/// One dynamic memory reference, as emitted by the trace generator.
///
/// Matches the per-record fields described in §2.1 of the paper: cpu id,
/// access address, instruction pointer, unique id, and the id of an earlier
/// record this one depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Unique identification number, assigned in trace order.
    pub id: RecordId,
    /// CPU that executed the instruction.
    pub cpu: CpuId,
    /// Kind of memory operation.
    pub op: MemOp,
    /// Memory access address (byte granularity).
    pub addr: Addr,
    /// Instruction pointer of the instruction performing the access.
    pub ip: Addr,
    /// Id of the earlier record this record is data-dependent on, if any.
    pub dep: Option<RecordId>,
}

impl TraceRecord {
    /// Returns the cache-line address for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn line_addr(&self, line_size: u64) -> Addr {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.addr & !(line_size - 1)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} @{:#x} ip={:#x}",
            self.id, self.cpu, self.op, self.addr, self.ip
        )?;
        if let Some(dep) = self.dep {
            write!(f, " dep={dep}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_ordering_follows_raw() {
        assert!(RecordId::new(1) < RecordId::new(2));
        assert_eq!(RecordId::from(7).raw(), 7);
    }

    #[test]
    fn mem_op_read_write_partition() {
        assert!(MemOp::Load.is_read());
        assert!(MemOp::IFetch.is_read());
        assert!(MemOp::Store.is_write());
        assert!(!MemOp::Store.is_read());
        assert!(!MemOp::Load.is_write());
    }

    #[test]
    fn mem_op_tag_roundtrip() {
        for op in [MemOp::Load, MemOp::Store, MemOp::IFetch] {
            assert_eq!(MemOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(MemOp::from_tag(9), None);
    }

    #[test]
    fn line_addr_masks_offset() {
        let r = TraceRecord {
            id: RecordId::new(0),
            cpu: CpuId::new(0),
            op: MemOp::Load,
            addr: 0x1234_5678,
            ip: 0,
            dep: None,
        };
        assert_eq!(r.line_addr(64), 0x1234_5640);
        assert_eq!(r.line_addr(4096), 0x1234_5000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_addr_rejects_non_power_of_two() {
        let r = TraceRecord {
            id: RecordId::new(0),
            cpu: CpuId::new(0),
            op: MemOp::Load,
            addr: 0,
            ip: 0,
            dep: None,
        };
        let _ = r.line_addr(100);
    }

    #[test]
    fn display_mentions_dep_when_present() {
        let r = TraceRecord {
            id: RecordId::new(5),
            cpu: CpuId::new(1),
            op: MemOp::Store,
            addr: 0x10,
            ip: 0x20,
            dep: Some(RecordId::new(3)),
        };
        let s = r.to_string();
        assert!(s.contains("dep=#3"), "{s}");
        assert!(s.contains("cpu1"), "{s}");
    }
}
