//! Record sinks: where kernels emit their reference streams.
//!
//! Workload kernels are written against the [`RecordSink`] trait, so the
//! same kernel body can either accumulate a whole in-memory [`Trace`]
//! (batch mode, via [`TraceBuilder`]) or push fixed-size packed blocks
//! through a bounded channel while the simulator is already consuming them
//! (streaming mode, via [`StreamBuilder`]). Both sinks assign the same
//! dense ids and pack the same offsets, so a kernel produces bit-identical
//! records through either.

use crate::builder::TraceBuilder;
use crate::chan::BlockSender;
use crate::packed::PackedRecord;
use crate::record::{Addr, CpuId, MemOp, RecordId};

/// A destination for an ordered stream of dependency-annotated records.
///
/// Ids are dense in emission order; implementations must return the id the
/// record received so kernels can chain dependencies off it.
pub trait RecordSink {
    /// Appends a record with an optional dependency and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `dep` does not point strictly backwards.
    fn record_dep(
        &mut self,
        cpu: CpuId,
        op: MemOp,
        addr: Addr,
        ip: Addr,
        dep: Option<RecordId>,
    ) -> RecordId;

    /// Number of records emitted so far.
    fn len(&self) -> usize;

    /// Whether nothing has been emitted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RecordSink for TraceBuilder {
    fn record_dep(
        &mut self,
        cpu: CpuId,
        op: MemOp,
        addr: Addr,
        ip: Addr,
        dep: Option<RecordId>,
    ) -> RecordId {
        TraceBuilder::record_dep(self, cpu, op, addr, ip, dep)
    }

    fn len(&self) -> usize {
        TraceBuilder::len(self)
    }
}

/// A sink that packs records into fixed-size blocks and pushes each full
/// block through a bounded [`block_channel`](crate::block_channel).
///
/// The records that flow through are identical to what a [`TraceBuilder`]
/// would store — same dense ids, same packed offsets — only the batching
/// differs, which is why a streamed run can be proven bit-identical to a
/// batch run.
#[derive(Debug)]
pub struct StreamBuilder {
    tx: BlockSender,
    block: Vec<PackedRecord>,
    block_len: usize,
    emitted: u64,
    /// Set once the receiver hangs up; later blocks are dropped cheaply.
    hung_up: bool,
}

impl StreamBuilder {
    /// Creates a sink that emits blocks of `block_len` records into `tx`.
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero.
    pub fn new(tx: BlockSender, block_len: usize) -> Self {
        assert!(block_len > 0, "stream block length must be positive");
        StreamBuilder {
            tx,
            block: Vec::with_capacity(block_len),
            block_len,
            emitted: 0,
            hung_up: false,
        }
    }

    /// Id the next record will receive.
    pub fn next_id(&self) -> RecordId {
        RecordId::new(self.emitted)
    }

    fn flush(&mut self) {
        if self.block.is_empty() || self.hung_up {
            self.block.clear();
            return;
        }
        let block = std::mem::replace(&mut self.block, Vec::with_capacity(self.block_len));
        if !self.tx.send(block) {
            self.hung_up = true;
        }
    }

    /// Flushes the final partial block and closes the channel (the drop of
    /// the sender is the end-of-stream signal).
    pub fn finish(mut self) {
        self.flush();
    }
}

impl RecordSink for StreamBuilder {
    fn record_dep(
        &mut self,
        cpu: CpuId,
        op: MemOp,
        addr: Addr,
        ip: Addr,
        dep: Option<RecordId>,
    ) -> RecordId {
        let id = RecordId::new(self.emitted);
        let dep_offset = match dep {
            None => 0,
            Some(d) => {
                assert!(
                    d < id,
                    "dependency {d} of record {id} must point to an earlier record"
                );
                let dist = id.raw() - d.raw();
                assert!(
                    dist <= u64::from(u32::MAX),
                    "dependency distance {dist} exceeds the packed-record range"
                );
                dist as u32
            }
        };
        self.block
            .push(PackedRecord::new(cpu, op, addr, ip, dep_offset));
        self.emitted += 1;
        if self.block.len() == self.block_len {
            self.flush();
        }
        id
    }

    fn len(&self) -> usize {
        self.emitted as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_channel;
    use crate::stream::Trace;

    fn emit<S: RecordSink>(sink: &mut S, n: u64) {
        let mut prev = None;
        for i in 0..n {
            prev = Some(sink.record_dep(CpuId::new(0), MemOp::Load, i * 64, 0x400, prev));
        }
    }

    #[test]
    fn stream_builder_matches_trace_builder_bit_for_bit() {
        let mut b = TraceBuilder::new();
        emit(&mut b, 1000);
        let batch = b.build();

        for block_len in [1usize, 7, 64, 4096] {
            let (tx, rx) = block_channel(4);
            let handle = std::thread::spawn(move || {
                let mut s = StreamBuilder::new(tx, block_len);
                emit(&mut s, 1000);
                s.finish();
            });
            let mut packed = Vec::new();
            while let Some(block) = rx.recv() {
                assert!(block.len() <= block_len);
                packed.extend(block);
            }
            handle.join().unwrap();
            assert_eq!(Trace::from_packed(packed), batch, "block_len {block_len}");
        }
    }

    #[test]
    fn partial_final_block_is_flushed_by_finish() {
        let (tx, rx) = block_channel(4);
        let mut s = StreamBuilder::new(tx, 64);
        emit(&mut s, 10);
        s.finish();
        let block = rx.recv().unwrap();
        assert_eq!(block.len(), 10);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn hung_up_receiver_does_not_block_the_producer() {
        let (tx, rx) = block_channel(1);
        drop(rx);
        let mut s = StreamBuilder::new(tx, 4);
        emit(&mut s, 1000); // would deadlock without hangup detection
        assert_eq!(s.len(), 1000);
        s.finish();
    }
}
