//! Trace characterisation: footprints, operation mix and dependency shape.

use std::collections::HashMap;

use crate::record::MemOp;
use crate::stream::Trace;

/// Working-set statistics of a trace at a given line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FootprintStats {
    /// Line size the footprint was measured at, in bytes.
    pub line_size: u64,
    /// Number of distinct lines touched.
    pub unique_lines: u64,
    /// Total footprint in bytes (`unique_lines * line_size`).
    pub bytes: u64,
}

/// Dependency-graph statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DepStats {
    /// Number of records that carry a dependency edge.
    pub dependent_records: u64,
    /// Length of the longest dependency chain (in records).
    pub max_chain: u64,
    /// Sum of backwards distances of all dependency edges.
    pub total_distance: u64,
}

impl DepStats {
    /// Mean backwards distance of dependency edges, or 0 if there are none.
    pub fn mean_distance(&self) -> f64 {
        if self.dependent_records == 0 {
            0.0
        } else {
            self.total_distance as f64 / self.dependent_records as f64
        }
    }
}

/// Aggregate statistics over a [`Trace`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Total number of records.
    pub records: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of instruction fetches.
    pub ifetches: u64,
    /// Records per cpu, indexed by cpu id.
    pub per_cpu: Vec<u64>,
    /// Footprint at 64-byte lines.
    pub footprint: FootprintStats,
    /// Dependency statistics.
    pub deps: DepStats,
}

impl TraceStats {
    /// Computes statistics over a trace using 64-byte lines for footprint.
    pub fn measure(trace: &Trace) -> Self {
        Self::measure_with_line(trace, 64)
    }

    /// Computes statistics with an explicit footprint line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn measure_with_line(trace: &Trace, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let mut s = TraceStats {
            per_cpu: vec![0; trace.cpu_count()],
            footprint: FootprintStats {
                line_size,
                ..Default::default()
            },
            ..Default::default()
        };
        // hoisted once: the per-record path below is a plain `addr & mask`
        let line_mask = !(line_size - 1);
        let mut lines: HashMap<u64, ()> = HashMap::new();
        // chain depth per record id (length of the longest chain ending here)
        let mut depth: Vec<u32> = vec![0; trace.len()];
        for r in trace.iter() {
            s.records += 1;
            match r.op {
                MemOp::Load => s.loads += 1,
                MemOp::Store => s.stores += 1,
                MemOp::IFetch => s.ifetches += 1,
            }
            s.per_cpu[r.cpu.index()] += 1;
            lines.entry(r.addr & line_mask).or_insert(());
            if let Some(dep) = r.dep {
                s.deps.dependent_records += 1;
                s.deps.total_distance += r.id.raw() - dep.raw();
                depth[r.id.index()] = depth[dep.index()] + 1;
                s.deps.max_chain = s.deps.max_chain.max(u64::from(depth[r.id.index()]));
            }
        }
        s.footprint.unique_lines = lines.len() as u64;
        s.footprint.bytes = s.footprint.unique_lines * line_size;
        s
    }

    /// Fraction of records that are stores (0 if the trace is empty).
    pub fn store_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.stores as f64 / self.records as f64
        }
    }

    /// Footprint in mebibytes at the measured line size.
    pub fn footprint_mib(&self) -> f64 {
        self.footprint.bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::CpuId;

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::measure(&Trace::new());
        assert_eq!(s.records, 0);
        assert_eq!(s.footprint.unique_lines, 0);
        assert_eq!(s.store_fraction(), 0.0);
        assert_eq!(s.deps.mean_distance(), 0.0);
    }

    #[test]
    fn op_mix_and_per_cpu_counts() {
        let mut b = TraceBuilder::new();
        b.record(CpuId::new(0), MemOp::Load, 0x0, 0);
        b.record(CpuId::new(0), MemOp::Store, 0x40, 0);
        b.record(CpuId::new(1), MemOp::IFetch, 0x80, 0);
        let s = TraceStats::measure(&b.build());
        assert_eq!((s.loads, s.stores, s.ifetches), (1, 1, 1));
        assert_eq!(s.per_cpu, vec![2, 1]);
        assert!((s.store_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_counts_unique_lines() {
        let mut b = TraceBuilder::new();
        // 3 accesses to the same line, 1 to another
        b.record(CpuId::new(0), MemOp::Load, 0x100, 0);
        b.record(CpuId::new(0), MemOp::Load, 0x104, 0);
        b.record(CpuId::new(0), MemOp::Store, 0x13f, 0);
        b.record(CpuId::new(0), MemOp::Load, 0x140, 0);
        let s = TraceStats::measure(&b.build());
        assert_eq!(s.footprint.unique_lines, 2);
        assert_eq!(s.footprint.bytes, 128);
    }

    #[test]
    fn dependency_chain_depth() {
        let mut b = TraceBuilder::new();
        let a = b.record(CpuId::new(0), MemOp::Load, 0, 0);
        let c = b.record_dep(CpuId::new(0), MemOp::Load, 0x40, 0, Some(a));
        b.record_dep(CpuId::new(0), MemOp::Load, 0x80, 0, Some(c));
        b.record(CpuId::new(0), MemOp::Load, 0xc0, 0); // independent
        let s = TraceStats::measure(&b.build());
        assert_eq!(s.deps.dependent_records, 2);
        assert_eq!(s.deps.max_chain, 2);
        assert_eq!(s.deps.mean_distance(), 1.0);
    }

    #[test]
    fn footprint_mib_conversion() {
        let mut b = TraceBuilder::new();
        for i in 0..(1024 * 1024 / 64) {
            b.record(CpuId::new(0), MemOp::Load, i * 64, 0);
        }
        let s = TraceStats::measure(&b.build());
        assert!((s.footprint_mib() - 1.0).abs() < 1e-9);
    }
}
