//! In-memory traces and iteration.

use crate::error::TraceError;
use crate::record::{CpuId, RecordId, TraceRecord};

/// An in-memory memory-reference trace.
///
/// Records are stored in trace order; record `i` has id `#i`. The invariant
/// that every dependency points at an earlier record is established by
/// [`TraceBuilder`](crate::TraceBuilder) and can be re-checked with
/// [`Trace::validate`] (e.g. after decoding from disk).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps a vector of records **without validating** the id/dependency
    /// invariants. Prefer [`TraceBuilder`](crate::TraceBuilder); use
    /// [`Trace::validate`] after constructing from untrusted data.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns the record with the given id, if present.
    pub fn get(&self, id: RecordId) -> Option<&TraceRecord> {
        self.records.get(id.index())
    }

    /// Borrowing iterator over the records in trace order.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            inner: self.records.iter(),
        }
    }

    /// The records as a slice.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the trace, returning the underlying records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of distinct CPUs that appear in the trace.
    pub fn cpu_count(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.cpu.index())
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Checks the structural invariants:
    ///
    /// * record `i` has id `#i` (dense, monotonically increasing ids), and
    /// * every dependency refers to a strictly earlier record.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, r) in self.records.iter().enumerate() {
            if r.id.raw() != i as u64 {
                return Err(TraceError::NonMonotonicId {
                    position: i as u64,
                    found: r.id,
                });
            }
            if let Some(dep) = r.dep {
                if dep >= r.id {
                    return Err(TraceError::ForwardDependency { record: r.id, dep });
                }
            }
        }
        Ok(())
    }

    /// Truncates the trace to at most `n` records.
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
    }

    /// Returns a sub-trace with only the records of one CPU, with ids
    /// re-assigned densely and dependencies remapped (dependencies on records
    /// of *other* CPUs are dropped, since they no longer exist in the slice).
    pub fn per_cpu(&self, cpu: CpuId) -> Trace {
        let mut map: Vec<Option<RecordId>> = vec![None; self.records.len()];
        let mut out = Vec::new();
        for r in &self.records {
            if r.cpu != cpu {
                continue;
            }
            let new_id = RecordId::new(out.len() as u64);
            map[r.id.index()] = Some(new_id);
            let dep = r.dep.and_then(|d| map[d.index()]);
            out.push(TraceRecord {
                id: new_id,
                dep,
                ..*r
            });
        }
        Trace { records: out }
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

/// Borrowing iterator over trace records, returned by [`Trace::iter`].
#[derive(Debug, Clone)]
pub struct TraceIter<'a> {
    inner: std::slice::Iter<'a, TraceRecord>,
}

impl<'a> Iterator for TraceIter<'a> {
    type Item = &'a TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::MemOp;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let a = b.record(CpuId::new(0), MemOp::Load, 0x100, 0x1);
        let c = b.record(CpuId::new(1), MemOp::Load, 0x200, 0x2);
        b.record_dep(CpuId::new(0), MemOp::Store, 0x300, 0x3, Some(a));
        b.record_dep(CpuId::new(1), MemOp::Store, 0x400, 0x4, Some(c));
        b.build()
    }

    #[test]
    fn len_get_iter_agree() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.get(RecordId::new(2)).unwrap().op, MemOp::Store);
        assert!(t.get(RecordId::new(99)).is_none());
    }

    #[test]
    fn cpu_count_is_max_plus_one() {
        let t = sample();
        assert_eq!(t.cpu_count(), 2);
        assert_eq!(Trace::new().cpu_count(), 0);
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_dep() {
        let mut recs = sample().into_records();
        recs[0].dep = Some(RecordId::new(3));
        let t = Trace::from_records(recs);
        assert!(matches!(
            t.validate(),
            Err(TraceError::ForwardDependency { .. })
        ));
    }

    #[test]
    fn validate_rejects_non_dense_ids() {
        let mut recs = sample().into_records();
        recs[1].id = RecordId::new(42);
        let t = Trace::from_records(recs);
        assert!(matches!(
            t.validate(),
            Err(TraceError::NonMonotonicId { position: 1, .. })
        ));
    }

    #[test]
    fn per_cpu_remaps_ids_and_deps() {
        let t = sample();
        let c0 = t.per_cpu(CpuId::new(0));
        assert_eq!(c0.len(), 2);
        assert!(c0.validate().is_ok());
        // the store depended on the first load of cpu0; after remap that is #0
        assert_eq!(c0.records()[1].dep, Some(RecordId::new(0)));
    }

    #[test]
    fn per_cpu_drops_cross_cpu_deps() {
        let mut b = TraceBuilder::new();
        let a = b.record(CpuId::new(0), MemOp::Load, 0x100, 0x1);
        b.record_dep(CpuId::new(1), MemOp::Load, 0x200, 0x2, Some(a));
        let t = b.build();
        let c1 = t.per_cpu(CpuId::new(1));
        assert_eq!(c1.len(), 1);
        assert_eq!(c1.records()[0].dep, None);
    }

    #[test]
    fn collect_and_extend() {
        let t = sample();
        let collected: Trace = t.iter().copied().collect();
        assert_eq!(collected, t);
        let mut e = Trace::new();
        e.extend(t.iter().copied());
        assert_eq!(e, t);
    }
}
