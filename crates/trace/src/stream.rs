//! In-memory traces and iteration.

use crate::error::TraceError;
use crate::packed::PackedRecord;
use crate::record::{CpuId, RecordId, TraceRecord};

/// An in-memory memory-reference trace.
///
/// Records are stored in trace order as fixed-width [`PackedRecord`]s;
/// record `i` has the implicit id `#i` and its dependency is a bounded
/// backward offset. The invariant that every dependency points at an
/// earlier record is therefore structural: the packed layout cannot even
/// express a forward edge. Construction from [`TraceRecord`]s (e.g. after
/// decoding from disk) notes the first invariant violation it encounters,
/// and [`Trace::validate`] reports it.
///
/// The trace also tracks two aggregates the simulator's hot path wants in
/// O(1): the number of CPUs ([`Trace::cpu_count`]) and the largest backward
/// dependency offset ([`Trace::max_dep_offset`], which sizes the engine's
/// completion ring).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    packed: Vec<PackedRecord>,
    /// Largest backward dependency offset in the trace.
    max_dep: u32,
    /// One past the largest cpu index seen (0 for an empty trace).
    cpu_limit: u32,
    /// First invariant violation seen while converting from `TraceRecord`s,
    /// with the position it occurred at.
    defect: Option<(u64, Defect)>,
}

/// A recorded invariant violation. [`TraceError`] itself is not `Clone`
/// (it carries `io::Error`), so the violation is stored in this mirrored
/// form and converted on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    NonMonotonicId { found: RecordId },
    ForwardDependency { record: RecordId, dep: RecordId },
}

impl Defect {
    fn to_error(self, at: u64) -> TraceError {
        match self {
            Defect::NonMonotonicId { found } => TraceError::NonMonotonicId {
                position: at,
                found,
            },
            Defect::ForwardDependency { record, dep } => {
                TraceError::ForwardDependency { record, dep }
            }
        }
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            packed: Vec::with_capacity(n),
            ..Trace::default()
        }
    }

    /// Converts a vector of records into packed storage.
    ///
    /// The id/dependency invariants are checked along the way; the first
    /// violation is **recorded** rather than returned (the offending edge is
    /// dropped, since the packed layout cannot represent it), and
    /// [`Trace::validate`] will report it. Prefer
    /// [`TraceBuilder`](crate::TraceBuilder), which never produces a defect.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        let mut t = Trace::with_capacity(records.len());
        for r in records {
            t.push_record(r);
        }
        t
    }

    /// Wraps already-packed records.
    ///
    /// # Panics
    ///
    /// Panics if any record's dependency offset reaches before the start of
    /// the trace — packed producers assign offsets positionally, so this
    /// indicates corrupted block assembly rather than untrusted input.
    pub fn from_packed(packed: Vec<PackedRecord>) -> Self {
        let mut max_dep = 0u32;
        let mut cpu_limit = 0u32;
        for (i, p) in packed.iter().enumerate() {
            assert!(
                u64::from(p.dep_offset()) <= i as u64,
                "dependency offset {} at position {i} reaches before the trace start",
                p.dep_offset()
            );
            max_dep = max_dep.max(p.dep_offset());
            cpu_limit = cpu_limit.max(u32::from(p.cpu().raw()) + 1);
        }
        Trace {
            packed,
            max_dep,
            cpu_limit,
            defect: None,
        }
    }

    /// Appends one packed record.
    ///
    /// # Panics
    ///
    /// Panics if the record's dependency offset reaches before the start of
    /// the trace.
    pub fn push(&mut self, p: PackedRecord) {
        let i = self.packed.len() as u64;
        assert!(
            u64::from(p.dep_offset()) <= i,
            "dependency offset {} at position {i} reaches before the trace start",
            p.dep_offset()
        );
        if p.dep_offset() > self.max_dep {
            self.max_dep = p.dep_offset();
        }
        let limit = u32::from(p.cpu().raw()) + 1;
        if limit > self.cpu_limit {
            self.cpu_limit = limit;
        }
        self.packed.push(p);
    }

    /// Appends one wide record, packing it and noting (not returning) any
    /// invariant violation, in the order [`Trace::validate`] reports them:
    /// the id check precedes the dependency check for each record.
    fn push_record(&mut self, r: TraceRecord) {
        let i = self.packed.len() as u64;
        if self.defect.is_none() && r.id.raw() != i {
            self.defect = Some((i, Defect::NonMonotonicId { found: r.id }));
        }
        let dep_offset = match r.dep {
            None => 0,
            Some(d) if d >= r.id || d.raw() >= i => {
                if self.defect.is_none() {
                    self.defect = Some((
                        i,
                        Defect::ForwardDependency {
                            record: r.id,
                            dep: d,
                        },
                    ));
                }
                0
            }
            Some(d) => {
                let dist = i - d.raw();
                assert!(
                    dist <= u64::from(u32::MAX),
                    "dependency distance {dist} exceeds the packed-record range"
                );
                dist as u32
            }
        };
        self.push(PackedRecord::new(r.cpu, r.op, r.addr, r.ip, dep_offset));
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Returns the record with the given id, if present. O(1).
    pub fn get(&self, id: RecordId) -> Option<TraceRecord> {
        self.packed.get(id.index()).map(|p| p.unpack(id.raw()))
    }

    /// Iterator over the records in trace order, materialised on the fly
    /// from the packed storage.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            inner: self.packed.iter().enumerate(),
        }
    }

    /// The packed records as a slice — the engine's hot path iterates this
    /// directly.
    pub fn packed(&self) -> &[PackedRecord] {
        &self.packed
    }

    /// Consumes the trace, returning the packed records.
    pub fn into_packed(self) -> Vec<PackedRecord> {
        self.packed
    }

    /// Materialises the trace as wide records.
    pub fn to_records(&self) -> Vec<TraceRecord> {
        self.iter().collect()
    }

    /// Consumes the trace, materialising wide records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.to_records()
    }

    /// Number of distinct CPUs that appear in the trace (one past the
    /// largest cpu index). O(1).
    pub fn cpu_count(&self) -> usize {
        self.cpu_limit as usize
    }

    /// Largest backward dependency offset in the trace. O(1); sizes the
    /// engine's completion ring.
    pub fn max_dep_offset(&self) -> u32 {
        self.max_dep
    }

    /// Checks the structural invariants:
    ///
    /// * record `i` has id `#i` (dense, monotonically increasing ids), and
    /// * every dependency refers to a strictly earlier record.
    ///
    /// Packed storage makes these hold by construction, so this reports the
    /// first violation noted while converting from wide records, if any.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        match self.defect {
            Some((at, d)) => Err(d.to_error(at)),
            None => Ok(()),
        }
    }

    /// Truncates the trace to at most `n` records, recomputing the cpu
    /// count and maximum dependency offset over the remaining prefix.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.packed.len() {
            return;
        }
        self.packed.truncate(n);
        if let Some((at, _)) = self.defect {
            if at >= n as u64 {
                self.defect = None;
            }
        }
        let mut max_dep = 0u32;
        let mut cpu_limit = 0u32;
        for p in &self.packed {
            max_dep = max_dep.max(p.dep_offset());
            cpu_limit = cpu_limit.max(u32::from(p.cpu().raw()) + 1);
        }
        self.max_dep = max_dep;
        self.cpu_limit = cpu_limit;
    }

    /// Returns a sub-trace with only the records of one CPU, with ids
    /// re-assigned densely and dependencies remapped (dependencies on records
    /// of *other* CPUs are dropped, since they no longer exist in the slice).
    /// Operates entirely on packed storage — no wide records are built.
    ///
    /// # Panics
    ///
    /// Panics on traces of [`u32::MAX`] records or more.
    pub fn per_cpu(&self, cpu: CpuId) -> Trace {
        assert!(
            self.packed.len() < u32::MAX as usize,
            "per_cpu supports traces below u32::MAX records"
        );
        // new position of each source record, u32::MAX = not kept
        let mut map: Vec<u32> = vec![u32::MAX; self.packed.len()];
        let mut out = Trace::new();
        for (i, p) in self.packed.iter().enumerate() {
            if p.cpu() != cpu {
                continue;
            }
            let new_pos = out.packed.len() as u32;
            map[i] = new_pos;
            let dep_offset = if p.has_dep() {
                match map[i - p.dep_offset() as usize] {
                    u32::MAX => 0,
                    m => new_pos - m,
                }
            } else {
                0
            };
            out.push(PackedRecord::new(cpu, p.op(), p.addr, p.ip, dep_offset));
        }
        out
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        for r in iter {
            self.push_record(r);
        }
    }
}

impl FromIterator<PackedRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = PackedRecord>>(iter: I) -> Self {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

impl Extend<PackedRecord> for Trace {
    fn extend<I: IntoIterator<Item = PackedRecord>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = TraceRecord;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = TraceIntoIter;

    fn into_iter(self) -> Self::IntoIter {
        TraceIntoIter {
            inner: self.packed.into_iter(),
            next_id: 0,
        }
    }
}

/// Iterator over trace records, returned by [`Trace::iter`]. Yields
/// [`TraceRecord`]s by value, unpacked on the fly.
#[derive(Debug, Clone)]
pub struct TraceIter<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, PackedRecord>>,
}

impl Iterator for TraceIter<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(i, p)| p.unpack(i as u64))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

/// Owning iterator over trace records, returned by
/// [`IntoIterator::into_iter`] on [`Trace`].
#[derive(Debug)]
pub struct TraceIntoIter {
    inner: std::vec::IntoIter<PackedRecord>,
    next_id: u64,
}

impl Iterator for TraceIntoIter {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        let p = self.inner.next()?;
        let r = p.unpack(self.next_id);
        self.next_id += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TraceIntoIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::MemOp;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let a = b.record(CpuId::new(0), MemOp::Load, 0x100, 0x1);
        let c = b.record(CpuId::new(1), MemOp::Load, 0x200, 0x2);
        b.record_dep(CpuId::new(0), MemOp::Store, 0x300, 0x3, Some(a));
        b.record_dep(CpuId::new(1), MemOp::Store, 0x400, 0x4, Some(c));
        b.build()
    }

    #[test]
    fn len_get_iter_agree() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.get(RecordId::new(2)).unwrap().op, MemOp::Store);
        assert!(t.get(RecordId::new(99)).is_none());
    }

    #[test]
    fn cpu_count_is_max_plus_one() {
        let t = sample();
        assert_eq!(t.cpu_count(), 2);
        assert_eq!(Trace::new().cpu_count(), 0);
    }

    #[test]
    fn max_dep_offset_tracks_largest_edge() {
        let t = sample();
        // record #2 depends on #0: the largest backward offset is 2
        assert_eq!(t.max_dep_offset(), 2);
        assert_eq!(Trace::new().max_dep_offset(), 0);
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_dep() {
        let mut recs = sample().into_records();
        recs[0].dep = Some(RecordId::new(3));
        let t = Trace::from_records(recs);
        assert!(matches!(
            t.validate(),
            Err(TraceError::ForwardDependency { .. })
        ));
    }

    #[test]
    fn validate_rejects_non_dense_ids() {
        let mut recs = sample().into_records();
        recs[1].id = RecordId::new(42);
        let t = Trace::from_records(recs);
        assert!(matches!(
            t.validate(),
            Err(TraceError::NonMonotonicId { position: 1, .. })
        ));
    }

    #[test]
    fn truncate_discards_later_defect_and_recomputes_aggregates() {
        let mut recs = sample().into_records();
        recs[3].dep = Some(RecordId::new(99)); // forward dep at position 3
        let mut t = Trace::from_records(recs);
        assert!(t.validate().is_err());
        t.truncate(2);
        // the defective record is gone; the prefix is valid again
        assert!(t.validate().is_ok());
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_dep_offset(), 0);
        assert_eq!(t.cpu_count(), 2);
        t.truncate(1);
        assert_eq!(t.cpu_count(), 1);
    }

    #[test]
    fn per_cpu_remaps_ids_and_deps() {
        let t = sample();
        let c0 = t.per_cpu(CpuId::new(0));
        assert_eq!(c0.len(), 2);
        assert!(c0.validate().is_ok());
        // the store depended on the first load of cpu0; after remap that is #0
        assert_eq!(
            c0.get(RecordId::new(1)).unwrap().dep,
            Some(RecordId::new(0))
        );
    }

    #[test]
    fn per_cpu_drops_cross_cpu_deps() {
        let mut b = TraceBuilder::new();
        let a = b.record(CpuId::new(0), MemOp::Load, 0x100, 0x1);
        b.record_dep(CpuId::new(1), MemOp::Load, 0x200, 0x2, Some(a));
        let t = b.build();
        let c1 = t.per_cpu(CpuId::new(1));
        assert_eq!(c1.len(), 1);
        assert_eq!(c1.get(RecordId::new(0)).unwrap().dep, None);
    }

    #[test]
    fn collect_and_extend() {
        let t = sample();
        let collected: Trace = t.iter().collect();
        assert_eq!(collected, t);
        let mut e = Trace::new();
        e.extend(t.iter());
        assert_eq!(e, t);
    }

    #[test]
    fn packed_roundtrip_through_from_packed() {
        let t = sample();
        let again = Trace::from_packed(t.packed().to_vec());
        assert_eq!(again, t);
        assert_eq!(again.max_dep_offset(), t.max_dep_offset());
        assert_eq!(again.cpu_count(), t.cpu_count());
    }

    #[test]
    #[should_panic(expected = "before the trace start")]
    fn from_packed_rejects_out_of_range_offsets() {
        use crate::record::MemOp;
        let p = PackedRecord::new(CpuId::new(0), MemOp::Load, 0, 0, 1);
        let _ = Trace::from_packed(vec![p]);
    }
}
