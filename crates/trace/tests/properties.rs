//! Randomized property tests for the packed trace pipeline: conversions
//! between the wide and packed record forms must be lossless, and the
//! streaming sink must reproduce the batch builder for any emission
//! pattern. Inputs are drawn from a deterministic family of seeds so
//! failures reproduce exactly.

use stacksim_rng::StdRng;
use stacksim_trace::{
    block_channel, CpuId, MemOp, PackedRecord, RecordId, RecordSink, StreamBuilder, Trace,
    TraceBuilder, TraceRecord,
};

fn any_op(rng: &mut StdRng) -> MemOp {
    match rng.gen_range(0..3u32) {
        0 => MemOp::Load,
        1 => MemOp::Store,
        _ => MemOp::IFetch,
    }
}

/// A random record at position `id` whose dependency (if any) points a
/// random distance backwards, occasionally the full `u32` range.
fn any_record(rng: &mut StdRng, id: u64) -> TraceRecord {
    let dep = if id > 0 && rng.gen_range(0..4u32) != 0 {
        let span = id.min(u64::from(u32::MAX));
        Some(RecordId::new(id - rng.gen_range(1..=span)))
    } else {
        None
    };
    TraceRecord {
        id: RecordId::new(id),
        cpu: CpuId::new(rng.gen_range(0..256u32) as u8),
        op: any_op(rng),
        addr: rng.gen_range(0..u64::MAX),
        ip: rng.gen_range(0..u64::MAX),
        dep,
    }
}

/// `pack_at` followed by `unpack` is the identity on any well-formed
/// record, at any position — including positions beyond the `u32` range,
/// where only the *distance* must fit.
#[test]
fn packed_record_roundtrips_any_record() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x9ac4ed ^ case);
        for _ in 0..512 {
            let id = match rng.gen_range(0..3u32) {
                0 => rng.gen_range(0..64u64),
                1 => rng.gen_range(0..1 << 20u64),
                _ => rng.gen_range(0..u64::MAX / 2) + u64::from(u32::MAX),
            };
            let r = any_record(&mut rng, id);
            let p = PackedRecord::pack_at(id, &r);
            assert_eq!(p.unpack(id), r, "record {r:?}");
        }
    }
}

/// Converting a whole well-formed trace to packed storage and back is
/// lossless, and the O(1) aggregates match a recomputation from the wide
/// records.
#[test]
fn trace_from_records_is_lossless() {
    for case in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x7ace5 ^ case);
        let n = rng.gen_range(1..2_000u64);
        let records: Vec<TraceRecord> = (0..n).map(|id| any_record(&mut rng, id)).collect();
        let trace = Trace::from_records(records.clone());
        assert!(trace.validate().is_ok());
        assert_eq!(trace.to_records(), records);
        let max_dep = records
            .iter()
            .filter_map(|r| r.dep.map(|d| (r.id.raw() - d.raw()) as u32))
            .max()
            .unwrap_or(0);
        assert_eq!(trace.max_dep_offset(), max_dep);
        let cpus = records.iter().map(|r| u32::from(r.cpu.raw()) + 1).max();
        assert_eq!(trace.cpu_count(), cpus.unwrap_or(0) as usize);
    }
}

/// Random `get` agrees with the materialised records.
#[test]
fn random_access_matches_iteration() {
    let mut rng = StdRng::seed_from_u64(0x6e7);
    let records: Vec<TraceRecord> = (0..500).map(|id| any_record(&mut rng, id)).collect();
    let trace = Trace::from_records(records.clone());
    for _ in 0..200 {
        let i = rng.gen_range(0..records.len());
        assert_eq!(trace.get(RecordId::new(i as u64)), Some(records[i]));
    }
    assert_eq!(trace.get(RecordId::new(records.len() as u64)), None);
}

/// For any random emission pattern and block size, the stream sink's
/// concatenated blocks equal the batch builder's trace bit for bit.
#[test]
fn stream_builder_matches_batch_for_random_emissions() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x57_3a ^ case);
        let n = rng.gen_range(1..3_000u64);
        let emissions: Vec<TraceRecord> = (0..n)
            .map(|id| {
                let mut r = any_record(&mut rng, id);
                // keep dependencies inside the emitted prefix
                if let Some(d) = r.dep {
                    r.dep = Some(RecordId::new(d.raw().min(id.saturating_sub(1))));
                }
                r
            })
            .collect();
        let block_len = rng.gen_range(1..512usize);

        let mut batch = TraceBuilder::new();
        for r in &emissions {
            batch.record_dep(r.cpu, r.op, r.addr, r.ip, r.dep);
        }

        let (tx, rx) = block_channel(4);
        let sent = emissions.clone();
        let producer = std::thread::spawn(move || {
            let mut s = StreamBuilder::new(tx, block_len);
            for r in &sent {
                s.record_dep(r.cpu, r.op, r.addr, r.ip, r.dep);
            }
            s.finish();
        });
        let mut packed = Vec::new();
        while let Some(block) = rx.recv() {
            packed.extend(block);
        }
        producer.join().unwrap();
        assert_eq!(
            Trace::from_packed(packed),
            batch.build(),
            "case {case}, block_len {block_len}"
        );
    }
}
