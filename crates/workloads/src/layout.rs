//! Synthetic address-space layout for workload kernels.
//!
//! Kernels do not allocate real memory; they reserve address *regions* for
//! their arrays in a simulated physical address space and emit references
//! into them. Regions are 4 KB-aligned so DRAM page and cache-set mappings
//! behave like separately allocated arrays would.

/// A contiguous array region in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
    elem: u64,
}

impl Region {
    /// Base address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes the region was allocated with.
    pub fn elem_size(&self) -> u64 {
        self.elem
    }

    /// Number of elements in the region.
    pub fn elems(&self) -> u64 {
        self.len / self.elem
    }

    /// Address of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn addr(&self, idx: u64) -> u64 {
        assert!(
            idx < self.elems(),
            "index {idx} out of bounds ({} elements)",
            self.elems()
        );
        self.base + idx * self.elem
    }

    /// Address of byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off >= len`.
    pub fn byte_addr(&self, off: u64) -> u64 {
        assert!(
            off < self.len,
            "offset {off} out of bounds ({} bytes)",
            self.len
        );
        self.base + off
    }
}

/// Bump allocator for [`Region`]s.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    cursor: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// A fresh address space. Allocation starts above the first 256 MB so
    /// synthetic data never collides with the zero page or code addresses.
    pub fn new() -> Self {
        AddressSpace {
            cursor: 0x1000_0000,
        }
    }

    /// Reserves a region of `count` elements of `elem` bytes each,
    /// 4 KB-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `elem` is zero.
    pub fn alloc(&mut self, count: u64, elem: u64) -> Region {
        assert!(elem > 0, "element size must be positive");
        let len = count * elem;
        let base = self.cursor;
        self.cursor = (self.cursor + len + 4095) & !4095;
        Region { base, len, elem }
    }

    /// Reserves a region of `count` 8-byte (f64) elements.
    pub fn alloc_f64(&mut self, count: u64) -> Region {
        self.alloc(count, 8)
    }

    /// Reserves a region of `count` 4-byte (index) elements.
    pub fn alloc_u32(&mut self, count: u64) -> Region {
        self.alloc(count, 4)
    }

    /// Total bytes reserved so far (footprint upper bound).
    pub fn reserved(&self) -> u64 {
        self.cursor - 0x1000_0000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap_and_are_page_aligned() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc_f64(100);
        let r2 = a.alloc_f64(100);
        assert!(r1.base() + r1.len() <= r2.base());
        assert_eq!(r2.base() % 4096, 0);
    }

    #[test]
    fn element_addressing() {
        let mut a = AddressSpace::new();
        let r = a.alloc_f64(10);
        assert_eq!(r.addr(0), r.base());
        assert_eq!(r.addr(3), r.base() + 24);
        assert_eq!(r.elems(), 10);
        assert_eq!(r.elem_size(), 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let mut a = AddressSpace::new();
        let r = a.alloc_f64(10);
        let _ = r.addr(10);
    }

    #[test]
    fn byte_addressing() {
        let mut a = AddressSpace::new();
        let r = a.alloc(2, 64);
        assert_eq!(r.byte_addr(64), r.base() + 64);
    }

    #[test]
    fn reserved_tracks_footprint() {
        let mut a = AddressSpace::new();
        assert_eq!(a.reserved(), 0);
        a.alloc_f64(512); // 4 KB
        assert_eq!(a.reserved(), 4096);
        a.alloc_u32(1); // rounds to one page
        assert_eq!(a.reserved(), 8192);
    }
}
