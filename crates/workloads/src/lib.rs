//! RMS workload kernels producing dependency-annotated memory traces.
//!
//! Implements the trace-generation side of §2.1 of *Die Stacking (3D)
//! Microarchitecture* (Black et al., MICRO 2006): the twelve RMS
//! (Recognition, Mining, Synthesis) benchmarks of Table 1 are modelled as
//! executable kernels whose loop nests are walked over synthetic address
//! layouts, emitting one trace record per memory instruction with the same
//! dependency annotations the paper's full-system trace generator produces.
//!
//! The paper collects these traces from proprietary RMS applications on an
//! Intel-internal full-system simulator; this crate substitutes
//! algorithmically faithful synthetic versions (see `DESIGN.md` §2 for the
//! substitution argument).
//!
//! # Example
//!
//! ```
//! use stacksim_workloads::{RmsBenchmark, WorkloadParams};
//!
//! let trace = RmsBenchmark::SMvm.generate(&WorkloadParams::test());
//! assert!(trace.validate().is_ok());
//! assert_eq!(trace.cpu_count(), 2); // two-threaded, as in the paper
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod layout;
mod params;
mod rms;
mod sparse;
mod stream;
mod tracer;

pub use layout::{AddressSpace, Region};
pub use params::{ParamsError, Scale, WorkloadParams, WorkloadParamsBuilder};
pub use rms::RmsBenchmark;
pub use sparse::SparsePattern;
pub use stream::TraceStream;
pub use tracer::{KernelTracer, ReduceChain};
