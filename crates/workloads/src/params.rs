//! Workload generation parameters.

use std::fmt;

/// A workload-parameter validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamsError {
    message: &'static str,
}

impl ParamsError {
    fn new(message: &'static str) -> Self {
        ParamsError { message }
    }
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload parameters: {}", self.message)
    }
}

impl std::error::Error for ParamsError {}

/// How big a trace to generate.
///
/// The paper collects one billion memory references per benchmark from a
/// full-system simulator; this reproduction generates algorithmically
/// equivalent address streams sized so that a full Fig. 5 sweep runs on one
/// machine in minutes while still exercising 4–64 MB caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny kernels for unit/integration tests (traces of a few thousand
    /// records; footprints of a few hundred KB).
    Test,
    /// Full evaluation scale (traces of a few million records; footprints
    /// from ~2 MB up to ~48 MB, matching each benchmark's Fig. 5 behaviour).
    #[default]
    Paper,
}

/// Parameters shared by all RMS workload generators.
///
/// Marked `#[non_exhaustive]`: construct with [`WorkloadParams::test`],
/// [`WorkloadParams::paper`] or [`WorkloadParams::builder`] so new fields
/// can be added without breaking downstream callers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct WorkloadParams {
    /// Generation scale.
    pub scale: Scale,
    /// Seed for the deterministic pseudo-random structure (sparse patterns,
    /// support-vector ordering, ...). Same seed, same trace.
    pub seed: u64,
    /// Number of threads (the paper's study uses two-threaded runs).
    pub threads: usize,
    /// Interleave granularity when merging per-thread streams, in records.
    pub chunk: usize,
    /// Worker threads each thermal solve may use. Purely an execution knob:
    /// the solver is bit-identical for any value (its determinism
    /// contract), so experiment digests must **not** absorb it — unlike
    /// [`threads`](Self::threads), which shapes the generated trace.
    pub solver_threads: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            scale: Scale::Paper,
            seed: 0x3d_d1e5,
            threads: 2,
            chunk: 32,
            solver_threads: 1,
        }
    }
}

impl WorkloadParams {
    /// Test-scale parameters (fast, small footprints).
    pub fn test() -> Self {
        WorkloadParams {
            scale: Scale::Test,
            ..Self::default()
        }
    }

    /// Paper-scale parameters.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Picks `test` when at `Scale::Test`, `paper` otherwise. The workhorse
    /// for kernels translating scale into dimensions.
    pub fn pick(&self, test: usize, paper: usize) -> usize {
        match self.scale {
            Scale::Test => test,
            Scale::Paper => paper,
        }
    }

    /// Starts a builder seeded with the default (paper-scale) parameters.
    #[must_use]
    pub fn builder() -> WorkloadParamsBuilder {
        WorkloadParamsBuilder {
            params: WorkloadParams::default(),
        }
    }

    /// Checks internal consistency. The lint pass `SL040` and the builder's
    /// [`WorkloadParamsBuilder::build`] both delegate here, so the
    /// constraints live in exactly one place.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if self.threads == 0 {
            return Err(ParamsError::new("thread count must be at least 1"));
        }
        if self.threads > 1024 {
            return Err(ParamsError::new("thread count must be at most 1024"));
        }
        if self.chunk == 0 {
            return Err(ParamsError::new(
                "interleave chunk must be at least 1 record",
            ));
        }
        if self.solver_threads == 0 || self.solver_threads > 512 {
            return Err(ParamsError::new(
                "solver thread count must be between 1 and 512",
            ));
        }
        Ok(())
    }
}

/// Builder for [`WorkloadParams`].
#[derive(Debug, Clone)]
pub struct WorkloadParamsBuilder {
    params: WorkloadParams,
}

impl WorkloadParamsBuilder {
    /// Generation scale.
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Self {
        self.params.scale = scale;
        self
    }

    /// Seed for the deterministic pseudo-random structure.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Number of threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Interleave granularity when merging per-thread streams, in records.
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.params.chunk = chunk;
        self
    }

    /// Worker threads each thermal solve may use (results are bit-identical
    /// for any value).
    #[must_use]
    pub fn solver_threads(mut self, solver_threads: usize) -> Self {
        self.params.solver_threads = solver_threads;
        self
    }

    /// Finishes the parameters, validating them.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see
    /// [`WorkloadParams::validate`]). Use [`Self::try_build`] to handle the
    /// error instead.
    #[must_use]
    pub fn build(self) -> WorkloadParams {
        match self.try_build() {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finishes the parameters, returning the first constraint violation
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation reported by [`WorkloadParams::validate`].
    pub fn try_build(self) -> Result<WorkloadParams, ParamsError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_two_threaded_paper_scale() {
        let p = WorkloadParams::default();
        assert_eq!(p.scale, Scale::Paper);
        assert_eq!(p.threads, 2);
        assert!(p.chunk > 0);
    }

    #[test]
    fn pick_respects_scale() {
        assert_eq!(WorkloadParams::test().pick(1, 100), 1);
        assert_eq!(WorkloadParams::paper().pick(1, 100), 100);
    }

    #[test]
    fn builder_accepts_valid_params() {
        let p = WorkloadParams::builder().threads(4).chunk(16).build();
        assert_eq!(p.threads, 4);
        assert_eq!(p.chunk, 16);
    }

    #[test]
    fn zero_threads_rejected() {
        let err = WorkloadParams::builder().threads(0).try_build();
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("thread count"));
    }

    #[test]
    fn absurd_thread_count_rejected() {
        assert!(WorkloadParams::builder().threads(4096).try_build().is_err());
    }

    #[test]
    fn solver_thread_bounds_rejected() {
        assert_eq!(WorkloadParams::default().solver_threads, 1);
        let err = WorkloadParams::builder().solver_threads(0).try_build();
        assert!(err.unwrap_err().to_string().contains("solver thread"));
        assert!(WorkloadParams::builder()
            .solver_threads(513)
            .try_build()
            .is_err());
        assert_eq!(
            WorkloadParams::builder()
                .solver_threads(8)
                .build()
                .solver_threads,
            8
        );
    }

    #[test]
    fn zero_chunk_rejected() {
        let err = WorkloadParams::builder().chunk(0).try_build();
        assert!(err.unwrap_err().to_string().contains("chunk"));
    }

    #[test]
    #[should_panic(expected = "invalid workload parameters")]
    fn build_panics_on_invalid() {
        let _ = WorkloadParams::builder().chunk(0).build();
    }
}
