//! Workload generation parameters.

/// How big a trace to generate.
///
/// The paper collects one billion memory references per benchmark from a
/// full-system simulator; this reproduction generates algorithmically
/// equivalent address streams sized so that a full Fig. 5 sweep runs on one
/// machine in minutes while still exercising 4–64 MB caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny kernels for unit/integration tests (traces of a few thousand
    /// records; footprints of a few hundred KB).
    Test,
    /// Full evaluation scale (traces of a few million records; footprints
    /// from ~2 MB up to ~48 MB, matching each benchmark's Fig. 5 behaviour).
    #[default]
    Paper,
}

/// Parameters shared by all RMS workload generators.
///
/// Marked `#[non_exhaustive]`: construct with [`WorkloadParams::test`],
/// [`WorkloadParams::paper`] or [`WorkloadParams::builder`] so new fields
/// can be added without breaking downstream callers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct WorkloadParams {
    /// Generation scale.
    pub scale: Scale,
    /// Seed for the deterministic pseudo-random structure (sparse patterns,
    /// support-vector ordering, ...). Same seed, same trace.
    pub seed: u64,
    /// Number of threads (the paper's study uses two-threaded runs).
    pub threads: usize,
    /// Interleave granularity when merging per-thread streams, in records.
    pub chunk: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            scale: Scale::Paper,
            seed: 0x3d_d1e5,
            threads: 2,
            chunk: 32,
        }
    }
}

impl WorkloadParams {
    /// Test-scale parameters (fast, small footprints).
    pub fn test() -> Self {
        WorkloadParams {
            scale: Scale::Test,
            ..Self::default()
        }
    }

    /// Paper-scale parameters.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Picks `test` when at `Scale::Test`, `paper` otherwise. The workhorse
    /// for kernels translating scale into dimensions.
    pub fn pick(&self, test: usize, paper: usize) -> usize {
        match self.scale {
            Scale::Test => test,
            Scale::Paper => paper,
        }
    }

    /// Starts a builder seeded with the default (paper-scale) parameters.
    #[must_use]
    pub fn builder() -> WorkloadParamsBuilder {
        WorkloadParamsBuilder {
            params: WorkloadParams::default(),
        }
    }
}

/// Builder for [`WorkloadParams`].
#[derive(Debug, Clone)]
pub struct WorkloadParamsBuilder {
    params: WorkloadParams,
}

impl WorkloadParamsBuilder {
    /// Generation scale.
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Self {
        self.params.scale = scale;
        self
    }

    /// Seed for the deterministic pseudo-random structure.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Number of threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Interleave granularity when merging per-thread streams, in records.
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.params.chunk = chunk;
        self
    }

    /// Finishes the parameters.
    #[must_use]
    pub fn build(self) -> WorkloadParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_two_threaded_paper_scale() {
        let p = WorkloadParams::default();
        assert_eq!(p.scale, Scale::Paper);
        assert_eq!(p.threads, 2);
        assert!(p.chunk > 0);
    }

    #[test]
    fn pick_respects_scale() {
        assert_eq!(WorkloadParams::test().pick(1, 100), 1);
        assert_eq!(WorkloadParams::paper().pick(1, 100), 100);
    }
}
