//! `conj` — Conjugate Gradient Solver ("Conj Solids", Table 1).
//!
//! Classic CG iteration on a banded sparse system small enough to fit the
//! baseline 4 MB L2 (~3 MB CSR + vectors), so its Fig. 5 bars are flat:
//! extra stacked capacity does not help. Each iteration performs one SpMV
//! (`q = A·p`), two dot products and three axpy updates.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::sparse::SparsePattern;
use crate::tracer::{KernelTracer, ReduceChain};

pub(crate) fn thread_trace<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let rows = p.pick(400, 24_000) as u64;
    let nnz = p.pick(4, 7) as u64;
    let iters = p.pick(2, 6);

    let pat = SparsePattern::synth(rows, rows, nnz, 0.9, p.seed ^ 0xC0173);
    let mut space = AddressSpace::new();
    let vals = space.alloc_f64(pat.nnz());
    let cols = space.alloc_u32(pat.nnz());
    let row_ptr = space.alloc_f64(rows + 1);
    let x = space.alloc_f64(rows);
    let r = space.alloc_f64(rows);
    let pvec = space.alloc_f64(rows);
    let q = space.alloc_f64(rows);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 512);
    t.attach_stack(stacks[tid], 2.0);
    let my_rows = split_range(rows, p.threads, tid);

    for _ in 0..iters {
        // q = A * p  (SpMV with index indirection)
        for i in my_rows.clone() {
            let rp = t.load(row_ptr.addr(i), None);
            let mut chain = ReduceChain::new(8);
            let lo = pat.row_ptr[i as usize];
            let hi = pat.row_ptr[i as usize + 1];
            for k in lo..hi {
                let idx = t.load(cols.addr(k), Some(rp));
                t.load(vals.addr(k), Some(rp));
                // indirect gather of p[col] depends on the index load
                t.reduce_load(pvec.addr(pat.col_idx[k as usize]), &mut chain, Some(idx));
            }
            t.store(q.addr(i), chain.tail());
        }
        // alpha = (r . r) / (p . q) — two streaming reductions
        let mut chain = ReduceChain::new(8);
        for i in my_rows.clone().step_by(8) {
            t.reduce_load(r.addr(i), &mut chain, None);
            t.reduce_load(q.addr(i), &mut chain, None);
        }
        // x += alpha p; r -= alpha q; p = r + beta p — streaming axpys
        for i in my_rows.clone().step_by(8) {
            let lp = t.load(pvec.addr(i), None);
            t.store(x.addr(i), Some(lp));
            let lq = t.load(q.addr(i), None);
            t.store(r.addr(i), Some(lq));
            let lr = t.load(r.addr(i), None);
            t.store(pvec.addr(i), Some(lr));
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::collect;
    use stacksim_trace::TraceStats;

    #[test]
    fn footprint_fits_baseline_l2() {
        let t = collect(thread_trace, &WorkloadParams::paper(), 0);
        let s = TraceStats::measure(&t);
        // thread 0 sees roughly half the vectors but the whole matrix band
        assert!(
            s.footprint_mib() < 4.0,
            "conj must fit 4 MB, got {:.2}",
            s.footprint_mib()
        );
        assert!(s.footprint_mib() > 0.5, "non-trivial footprint");
    }

    #[test]
    fn has_indirection_dependencies() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        // the stack-model records are independent; the algorithmic records
        // (1 / (1 + ratio) of the trace) are almost all dependent
        assert!(
            s.deps.dependent_records * 4 > s.records,
            "SpMV records are dependent"
        );
    }

    #[test]
    fn threads_partition_the_rows() {
        let p = WorkloadParams::test();
        let t0 = collect(thread_trace, &p, 0);
        let t1 = collect(thread_trace, &p, 1);
        // both threads emit, and their store targets differ (different rows)
        assert!(!t0.is_empty() && !t1.is_empty());
        let stores0: std::collections::HashSet<u64> = t0
            .iter()
            .filter(|r| r.op.is_write())
            .map(|r| r.addr)
            .collect();
        let stores1: std::collections::HashSet<u64> = t1
            .iter()
            .filter(|r| r.op.is_write())
            .map(|r| r.addr)
            .collect();
        assert!(stores0.is_disjoint(&stores1), "threads write disjoint rows");
    }
}
