//! `dSYM` — Dense Matrix Multiplication (Table 1).
//!
//! Cache-blocked `C = A·B`. The hot working set is three blocks, far below
//! the 4 MB L2, so dSym shows the lowest, flattest CPMA of the suite in
//! Fig. 5 — streaming SIMD loads with no pointer chasing.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::tracer::KernelTracer;

pub(crate) fn thread_trace<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let n = p.pick(48, 288) as u64;
    let block = p.pick(16, 48) as u64;
    debug_assert_eq!(n % block, 0);
    let blocks = n / block;
    // SIMD vector width in elements (64 B / 8 B)
    let vw = 8u64;

    let mut space = AddressSpace::new();
    let a = space.alloc_f64(n * n);
    let b = space.alloc_f64(n * n);
    let c = space.alloc_f64(n * n);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 256);
    t.attach_stack(stacks[tid], 1.2);
    // threads split the ii block-row loop
    let my_blocks = split_range(blocks, p.threads, tid);

    for bi in my_blocks {
        for bj in 0..blocks {
            for bk in 0..blocks {
                let (i0, j0, k0) = (bi * block, bj * block, bk * block);
                for i in i0..i0 + block {
                    for k in k0..k0 + block {
                        // A[i][k] is register-resident across the j loop;
                        // one scalar load per (i, k)
                        let la = t.load(a.addr(i * n + k), None);
                        for jv in (j0..j0 + block).step_by(vw as usize) {
                            // vector load of B[k][j..j+8]; C accumulates in
                            // registers within the block and is written once
                            // per (i, jv) on the last k
                            let lb = t.load(b.addr(k * n + jv), Some(la));
                            if k == k0 + block - 1 {
                                t.store(c.addr(i * n + jv), Some(lb));
                            }
                        }
                    }
                }
            }
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::collect;
    use stacksim_trace::TraceStats;

    #[test]
    fn footprint_fits_baseline_l2() {
        let t = collect(thread_trace, &WorkloadParams::paper(), 0);
        let s = TraceStats::measure(&t);
        assert!(
            s.footprint_mib() < 4.0,
            "dSym fits 4 MB, got {:.2}",
            s.footprint_mib()
        );
    }

    #[test]
    fn loads_dominate_stores() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        // stack traffic adds ~1/3 stores at ratio 1.2; the algorithmic part
        // is almost all loads
        assert!(s.loads > 2 * s.stores, "blocked MM is load-heavy");
    }

    #[test]
    fn trace_size_is_cubic_in_blocks() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        // n=48, block=16: 3 block rows, thread 0 of 2 gets 2 of them
        // per block triple: block^2 A loads + block^2*block/8 B loads
        assert!(t.len() > 10_000, "got {}", t.len());
    }
}
