//! `gauss` — Linear Equation Solver using Gauss-Jordan Elimination
//! (Table 1).
//!
//! Row-reduction sweeps over a dense matrix of ~20 MB: each pivot step
//! streams the whole matrix (load row element, load pivot-row element,
//! store updated element). The working set exceeds 4 and 12 MB but fits the
//! stacked 32/64 MB DRAM caches, so gauss is one of the big Fig. 5 winners.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::tracer::KernelTracer;

pub(crate) fn thread_trace<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let n = p.pick(96, 1600) as u64;
    let pivots = p.pick(2, 3) as u64;
    let vw = 8u64; // SIMD elements per 64 B line

    let mut space = AddressSpace::new();
    let a = space.alloc_f64(n * n); // 1600^2 * 8 B = 20.5 MB
    let rhs = space.alloc_f64(n);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 256);
    t.attach_stack(stacks[tid], 4.0);
    let colds: Vec<_> = (0..p.threads).map(|_| space.alloc(4 << 20, 64)).collect();
    t.attach_cold_stream(colds[tid], 50);
    let my_rows = split_range(n, p.threads, tid);

    for piv in 0..pivots {
        // spread the pivot rows over the matrix so each sweep re-walks it
        let pivot_row = piv * (n / pivots.max(1));
        for i in my_rows.clone() {
            if i == pivot_row {
                continue;
            }
            // the scale factor A[i][piv] / A[piv][piv]
            let scale = t.load(a.addr(i * n + pivot_row), None);
            for jv in (0..n).step_by(vw as usize) {
                // pivot row line: hot, reused by every row of the sweep
                let lp = t.load(a.addr(pivot_row * n + jv), Some(scale));
                // the row being updated: streaming read-modify-write
                let lr = t.load(a.addr(i * n + jv), None);
                t.store(a.addr(i * n + jv), Some(lp.max(lr)));
            }
            let lb = t.load(rhs.addr(pivot_row), Some(scale));
            t.store(rhs.addr(i), Some(lb));
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::collect;
    use stacksim_trace::TraceStats;

    #[test]
    fn footprint_exceeds_12mb_but_fits_32mb() {
        let t = collect(thread_trace, &WorkloadParams::paper(), 0);
        let s = TraceStats::measure(&t);
        // each thread touches the full matrix (pivot row) plus its own half
        // of the updated rows; the merged two-thread footprint is ~20 MB
        assert!(s.footprint_mib() > 9.0, "got {:.2} MiB", s.footprint_mib());
        assert!(s.footprint_mib() < 32.0, "got {:.2} MiB", s.footprint_mib());
    }

    #[test]
    fn stores_are_about_a_third_of_references() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        let frac = s.store_fraction();
        assert!(frac > 0.2 && frac < 0.45, "store fraction {frac}");
    }

    #[test]
    fn matrix_is_reswept_each_pivot() {
        // the same line must be touched once per pivot step
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        let touches_per_line = s.records as f64 / s.footprint.unique_lines as f64;
        assert!(
            touches_per_line > 2.0,
            "sweeps revisit lines: {touches_per_line}"
        );
    }
}
