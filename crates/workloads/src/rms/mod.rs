//! The twelve RMS (Recognition, Mining, Synthesis) workloads of Table 1.
//!
//! Each benchmark is implemented as an executable kernel model: the actual
//! algorithm's loop nest is walked over a synthetic data layout, emitting
//! one dependency-annotated trace record per memory instruction, exactly as
//! the paper's trace generator does alongside its full-system simulator
//! (§2.1). Two threads split the outer loop, sharing read-mostly structures
//! and keeping private vectors, and are interleaved into one SMP trace.
//!
//! Footprints are scaled so the benchmarks partition the Fig. 5 capacity
//! axis the way the paper reports: `gauss`, `pcg`, `sMVM`, `sTrans`, `sUS`
//! and `svm` have working sets well beyond 4 MB and improve with stacked
//! capacity, while `conj`, `dSym`, `sSym`, `sAVDF`, `sAVIF` and `svd` fit
//! in the baseline 4 MB L2 and stay flat.

mod conj;
mod dsym;
mod gauss;
mod pcg;
mod rigidity;
mod spmv;
mod svd;
mod svm;

use stacksim_trace::{interleave, RecordSink, Trace, TraceBuilder};

use crate::params::WorkloadParams;
use crate::stream::TraceStream;

/// One of the RMS workloads of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmsBenchmark {
    /// `conj` — Conjugate Gradient Solver ("Conj Solids").
    Conj,
    /// `dSYM` — Dense Matrix Multiplication.
    DSym,
    /// `gauss` — Linear Equation Solver using Gauss-Jordan Elimination.
    Gauss,
    /// `pcg` — Preconditioned Conjugate Gradient Solver (Cholesky
    /// preconditioner, red-black reordering).
    Pcg,
    /// `sMVM` — Sparse Matrix Multiplication.
    SMvm,
    /// `sSym` — Symmetrical Sparse Matrix Multiplication.
    SSym,
    /// `sTrans` — Transposed Sparse Matrix Multiplication.
    STrans,
    /// `sAVDF` — Structural Rigidity Computation with AVDF Kernel.
    SAvdf,
    /// `sAVIF` — Structural Rigidity Computation with AVIF Kernel.
    SAvif,
    /// `sUS` — Structural Rigidity Computation with US Kernel.
    SUs,
    /// `svd` — Singular Value Decomposition with Jacobi Method.
    Svd,
    /// `svm` — Pattern Recognition Algorithm for Face Recognition in Images.
    Svm,
}

impl RmsBenchmark {
    /// All twelve benchmarks in Fig. 5's bar-group order.
    pub fn all() -> [RmsBenchmark; 12] {
        use RmsBenchmark::*;
        [
            Conj, DSym, Gauss, Pcg, SMvm, SSym, STrans, SAvdf, SAvif, SUs, Svd, Svm,
        ]
    }

    /// The short name used in Fig. 5.
    pub fn name(&self) -> &'static str {
        match self {
            RmsBenchmark::Conj => "conj",
            RmsBenchmark::DSym => "dSym",
            RmsBenchmark::Gauss => "gauss",
            RmsBenchmark::Pcg => "pcg",
            RmsBenchmark::SMvm => "sMVM",
            RmsBenchmark::SSym => "sSym",
            RmsBenchmark::STrans => "sTrans",
            RmsBenchmark::SAvdf => "sAVDF",
            RmsBenchmark::SAvif => "sAVIF",
            RmsBenchmark::SUs => "sUS",
            RmsBenchmark::Svd => "svd",
            RmsBenchmark::Svm => "svm",
        }
    }

    /// The Table 1 description.
    pub fn description(&self) -> &'static str {
        match self {
            RmsBenchmark::Conj => "Conjugate Gradient Solver",
            RmsBenchmark::DSym => "Dense Matrix Multiplication",
            RmsBenchmark::Gauss => "Linear Equation Solver using Gauss-Jordan Elimination",
            RmsBenchmark::Pcg => {
                "Preconditioned Conjugate Gradient Solver using Cholesky Preconditioner, \
                 Red-Black Reordering"
            }
            RmsBenchmark::SMvm => "Sparse Matrix Multiplication",
            RmsBenchmark::SSym => "Symmetrical Sparse Matrix Multiplication",
            RmsBenchmark::STrans => "Transposed Sparse Matrix Multiplication",
            RmsBenchmark::SAvdf => "Structural Rigidity Computation with AVDF Kernel",
            RmsBenchmark::SAvif => "Structural Rigidity Computation with AVIF Kernel",
            RmsBenchmark::SUs => "Structural Rigidity Computation with US Kernel",
            RmsBenchmark::Svd => "Singular Value Decomposition with Jacobi Method",
            RmsBenchmark::Svm => "Pattern Recognition Algorithm for Face Recognition in Images",
        }
    }

    /// Whether the benchmark's working set exceeds the baseline 4 MB L2
    /// (and is therefore expected to benefit from stacked capacity).
    pub fn capacity_sensitive(&self) -> bool {
        matches!(
            self,
            RmsBenchmark::Gauss
                | RmsBenchmark::Pcg
                | RmsBenchmark::SMvm
                | RmsBenchmark::STrans
                | RmsBenchmark::SUs
                | RmsBenchmark::Svm
        )
    }

    /// Generates the two-threaded SMP trace for this benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `params.threads` is zero.
    pub fn generate(&self, params: &WorkloadParams) -> Trace {
        assert!(params.threads > 0, "need at least one thread");
        let threads: Vec<Trace> = (0..params.threads)
            .map(|tid| self.thread_trace(params, tid))
            .collect();
        interleave(&threads, params.chunk)
    }

    /// Starts generating this benchmark's two-threaded SMP trace in the
    /// background and returns a stream of fixed-size packed-record blocks.
    /// Concatenated, the blocks are bit-identical to
    /// [`generate`](RmsBenchmark::generate) — generation merely overlaps
    /// with whatever consumes the blocks (see `DESIGN.md` §14).
    ///
    /// # Panics
    ///
    /// Panics if `params.threads` is zero or `block_len` is zero.
    pub fn stream(&self, params: &WorkloadParams, block_len: usize) -> TraceStream {
        TraceStream::spawn(*self, *params, block_len)
    }

    fn thread_trace(&self, params: &WorkloadParams, tid: usize) -> Trace {
        self.emit_thread(TraceBuilder::new(), params, tid).build()
    }

    /// Runs the benchmark's per-thread kernel, emitting its records into
    /// `sink`. The record sequence only depends on `(self, params, tid)`,
    /// never on the sink — that is what makes streamed generation
    /// bit-identical to batch generation.
    pub(crate) fn emit_thread<S: RecordSink>(
        &self,
        sink: S,
        params: &WorkloadParams,
        tid: usize,
    ) -> S {
        match self {
            RmsBenchmark::Conj => conj::thread_trace(sink, params, tid),
            RmsBenchmark::DSym => dsym::thread_trace(sink, params, tid),
            RmsBenchmark::Gauss => gauss::thread_trace(sink, params, tid),
            RmsBenchmark::Pcg => pcg::thread_trace(sink, params, tid),
            RmsBenchmark::SMvm => spmv::smvm_thread(sink, params, tid),
            RmsBenchmark::SSym => spmv::ssym_thread(sink, params, tid),
            RmsBenchmark::STrans => spmv::strans_thread(sink, params, tid),
            RmsBenchmark::SAvdf => rigidity::avdf_thread(sink, params, tid),
            RmsBenchmark::SAvif => rigidity::avif_thread(sink, params, tid),
            RmsBenchmark::SUs => rigidity::us_thread(sink, params, tid),
            RmsBenchmark::Svd => svd::thread_trace(sink, params, tid),
            RmsBenchmark::Svm => svm::thread_trace(sink, params, tid),
        }
    }
}

impl std::fmt::Display for RmsBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Splits `0..n` into `threads` nearly equal contiguous chunks and returns
/// the `tid`-th one. Used by every kernel to divide its outer loop.
pub(crate) fn split_range(n: u64, threads: usize, tid: usize) -> std::ops::Range<u64> {
    let threads = threads as u64;
    let tid = tid as u64;
    let per = n / threads;
    let extra = n % threads;
    let start = tid * per + tid.min(extra);
    let len = per + u64::from(tid < extra);
    start..start + len
}

/// A per-thread kernel, monomorphised to the batch sink (test helper).
#[cfg(test)]
pub(crate) type ThreadFn = fn(TraceBuilder, &WorkloadParams, usize) -> TraceBuilder;

/// Materialises one kernel thread as a [`Trace`] (test helper).
#[cfg(test)]
pub(crate) fn collect(f: ThreadFn, params: &WorkloadParams, tid: usize) -> Trace {
    f(TraceBuilder::new(), params, tid).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_trace::TraceStats;

    #[test]
    fn all_benchmarks_have_unique_names() {
        let names: std::collections::HashSet<_> =
            RmsBenchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn split_range_covers_everything_exactly_once() {
        for n in [0u64, 1, 7, 100] {
            for threads in [1usize, 2, 3, 5] {
                let mut total = 0;
                let mut next = 0;
                for tid in 0..threads {
                    let r = split_range(n, threads, tid);
                    assert_eq!(r.start, next, "ranges must be contiguous");
                    next = r.end;
                    total += r.end - r.start;
                }
                assert_eq!(total, n);
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn every_benchmark_generates_a_valid_two_thread_trace() {
        let p = WorkloadParams::test();
        for b in RmsBenchmark::all() {
            let t = b.generate(&p);
            assert!(!t.is_empty(), "{b} generated an empty trace");
            assert!(t.validate().is_ok(), "{b} trace invalid");
            assert_eq!(t.cpu_count(), 2, "{b} must be two-threaded");
            let s = TraceStats::measure(&t);
            assert!(
                s.per_cpu[0] > 0 && s.per_cpu[1] > 0,
                "{b} both threads active"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = WorkloadParams::test();
        let a = RmsBenchmark::Pcg.generate(&p);
        let b = RmsBenchmark::Pcg.generate(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_sensitive_benchmarks_have_big_footprints() {
        let p = WorkloadParams::paper();
        // spot-check one sensitive and one insensitive benchmark
        let big = TraceStats::measure(&RmsBenchmark::Gauss.generate(&p));
        assert!(
            big.footprint_mib() > 8.0,
            "gauss footprint {:.1} MiB",
            big.footprint_mib()
        );
        let small = TraceStats::measure(&RmsBenchmark::Conj.generate(&p));
        assert!(
            small.footprint_mib() < 4.0,
            "conj footprint {:.1} MiB",
            small.footprint_mib()
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(RmsBenchmark::SMvm.to_string(), "sMVM");
    }
}
