//! `pcg` — Preconditioned Conjugate Gradient Solver using a Cholesky
//! preconditioner with red-black reordering (Table 1).
//!
//! Per iteration: one SpMV over a ~15 MB CSR system, one red-black
//! preconditioner application (two dependent half-sweeps), dot products and
//! vector updates — ~20 MB total working set, a strong Fig. 5 improver at
//! 32 MB and beyond.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::sparse::SparsePattern;
use crate::tracer::{KernelTracer, ReduceChain};

pub(crate) fn thread_trace<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let rows = p.pick(500, 120_000) as u64;
    let nnz = p.pick(4, 10) as u64;
    let iters = p.pick(2, 3);

    let pat = SparsePattern::synth(rows, rows, nnz, 0.85, p.seed ^ 0x9C6);
    let mut space = AddressSpace::new();
    let vals = space.alloc_f64(pat.nnz()); // ~9.6 MB
    let cols = space.alloc_u32(pat.nnz()); // ~4.8 MB
    let row_ptr = space.alloc_f64(rows + 1);
    // preconditioner factor (diagonal-ish), solution/residual/search vectors
    let precond = space.alloc_f64(rows);
    let x = space.alloc_f64(rows);
    let r = space.alloc_f64(rows);
    let z = space.alloc_f64(rows);
    let pvec = space.alloc_f64(rows);
    let q = space.alloc_f64(rows);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 768);
    t.attach_stack(stacks[tid], 2.5);
    let colds: Vec<_> = (0..p.threads).map(|_| space.alloc(4 << 20, 64)).collect();
    t.attach_cold_stream(colds[tid], 50);
    let my_rows = split_range(rows, p.threads, tid);

    // nnz are visited in groups of 4: one 16-byte-index line load covers
    // four indices; values stream at element granularity
    for _ in 0..iters {
        // --- q = A p ---
        for i in my_rows.clone() {
            let rp = t.load(row_ptr.addr(i), None);
            let mut chain = ReduceChain::new(8);
            let lo = pat.row_ptr[i as usize];
            let hi = pat.row_ptr[i as usize + 1];
            let mut k = lo;
            while k < hi {
                let idx = t.load(cols.addr(k), Some(rp));
                let group_end = (k + 4).min(hi);
                // one value-line load per index group
                t.load(vals.addr(k), Some(rp));
                // two representative indirect gathers per group
                t.reduce_load(pvec.addr(pat.col_idx[k as usize]), &mut chain, Some(idx));
                if group_end - k > 2 {
                    let mid = (k + group_end) / 2;
                    t.reduce_load(pvec.addr(pat.col_idx[mid as usize]), &mut chain, Some(idx));
                }
                k = group_end;
            }
            t.store(q.addr(i), chain.tail());
        }
        // --- red-black preconditioner: z = M^-1 r ---
        // red half-sweep (even rows), then black (odd rows) depending on the
        // red results through the banded neighbours
        for colour in 0..2u64 {
            for i in my_rows.clone().filter(|i| i % 2 == colour) {
                let lm = t.load(precond.addr(i), None);
                let lr = t.load(r.addr(i), Some(lm));
                // rows of one colour are independent; the red->black
                // ordering is a barrier between half-sweeps, not a chain
                t.store(z.addr(i), Some(lr));
            }
        }
        // --- dot products and axpys (streaming) ---
        let mut chain = ReduceChain::new(8);
        for i in my_rows.clone().step_by(8) {
            t.reduce_load(r.addr(i), &mut chain, None);
            t.reduce_load(z.addr(i), &mut chain, None);
        }
        for i in my_rows.clone().step_by(8) {
            let lp = t.load(pvec.addr(i), None);
            t.store(x.addr(i), Some(lp));
            let lq = t.load(q.addr(i), None);
            t.store(r.addr(i), Some(lq));
            let lz = t.load(z.addr(i), None);
            t.store(pvec.addr(i), Some(lz));
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::collect;
    use stacksim_trace::TraceStats;

    #[test]
    fn footprint_exceeds_12mb() {
        let t = collect(thread_trace, &WorkloadParams::paper(), 0);
        let s = TraceStats::measure(&t);
        assert!(s.footprint_mib() > 7.0, "got {:.2} MiB", s.footprint_mib());
    }

    #[test]
    fn red_black_sweeps_emit_both_colours() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        // stores to z exist for both even and odd rows: count distinct
        // store addresses; they must be more than half the rows
        let stores: std::collections::HashSet<u64> = t
            .iter()
            .filter(|r| r.op.is_write())
            .map(|r| r.addr)
            .collect();
        assert!(stores.len() > 400, "got {}", stores.len());
    }

    #[test]
    fn indirection_creates_dependence() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        assert!(s.deps.dependent_records * 6 > s.records);
        assert!(s.deps.max_chain >= 2, "gather chains are present");
    }
}
