//! The three Structural Rigidity Computation kernels of Table 1 (`sAVDF`,
//! `sAVIF`, `sUS`): finite-element stencil sweeps over 3-D grids.
//!
//! AVDF and AVIF use grids that fit the 4 MB baseline L2 (flat in Fig. 5);
//! US sweeps a ~10 MB grid and starts improving at the 12 MB stacked SRAM.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::tracer::{KernelTracer, ReduceChain};

/// One relaxation sweep over an `n³` grid. For every interior node a
/// 7-point stencil is evaluated: neighbour loads feed a reduction chain,
/// then the node is stored. Threads split the outer `z` planes.
fn stencil_sweeps<S: RecordSink>(
    sink: S,
    p: &WorkloadParams,
    tid: usize,
    n: u64,
    sweeps: u64,
    seed_salt: u64,
) -> S {
    let _ = seed_salt; // stencils are fully structured; no randomness needed
    let mut space = AddressSpace::new();
    let grid = space.alloc_f64(n * n * n);
    let stiff = space.alloc_f64(n * n); // per-column stiffness coefficients

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 512);
    t.attach_stack(stacks[tid], 1.5);
    let my_planes = split_range(n.saturating_sub(2), p.threads, tid);

    for _ in 0..sweeps {
        for zz in my_planes.clone() {
            let z = zz + 1;
            for y in 1..n - 1 {
                let ls = t.load(stiff.addr(z * n + y), None);
                for x in 1..n - 1 {
                    let c = (z * n + y) * n + x;
                    let mut chain = ReduceChain::new(4);
                    // +-x neighbours share the centre line; +-y and +-z are
                    // distinct lines — the loads are mostly independent
                    t.reduce_load(grid.addr(c - 1), &mut chain, Some(ls));
                    t.reduce_load(grid.addr(c + 1), &mut chain, None);
                    t.reduce_load(grid.addr(c - n), &mut chain, None);
                    t.reduce_load(grid.addr(c + n), &mut chain, None);
                    t.reduce_load(grid.addr(c - n * n), &mut chain, None);
                    t.reduce_load(grid.addr(c + n * n), &mut chain, None);
                    t.store(grid.addr(c), chain.tail());
                }
            }
        }
    }
    t.into_sink()
}

/// `sAVDF`: 48³ grid (~0.9 MB), three sweeps — fits the baseline L2.
pub(crate) fn avdf_thread<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let n = p.pick(8, 44) as u64;
    let sweeps = p.pick(2, 3) as u64;
    stencil_sweeps(sink, p, tid, n, sweeps, 0xA7DF)
}

/// `sAVIF`: 56³ grid (~1.4 MB), two sweeps — fits the baseline L2.
pub(crate) fn avif_thread<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let n = p.pick(10, 56) as u64;
    let sweeps = p.pick(2, 2) as u64;
    stencil_sweeps(sink, p, tid, n, sweeps, 0xA71F)
}

/// `sUS`: a ~10 MB grid swept at cache-line granularity (vectorised
/// line-by-line updates) so the larger footprint stays within the trace
/// budget; improves already at the 12 MB stacked SRAM.
pub(crate) fn us_thread<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let n = p.pick(16, 108) as u64;
    let sweeps = p.pick(2, 3) as u64;
    let vw = 8u64;

    let mut space = AddressSpace::new();
    let grid = space.alloc_f64(n * n * n); // 108^3 * 8 = 9.6 MB

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let colds: Vec<_> = (0..p.threads).map(|_| space.alloc(4 << 20, 64)).collect();
    let mut t = KernelTracer::with_sink(sink, 512);
    t.attach_stack(stacks[tid], 2.5);
    t.attach_cold_stream(colds[tid], 50);
    let my_planes = split_range(n.saturating_sub(2), p.threads, tid);
    for _ in 0..sweeps {
        for zz in my_planes.clone() {
            let z = zz + 1;
            for y in 1..n - 1 {
                for xv in (0..n).step_by(vw as usize) {
                    let c = (z * n + y) * n + xv;
                    // vectorised 7-point stencil: the three x-lines of the
                    // neighbouring planes plus the centre line
                    let l1 = t.load(grid.addr(c - n * n), None);
                    let l2 = t.load(grid.addr(c + n * n), None);
                    let l3 = t.load(grid.addr(c), Some(l1.max(l2)));
                    t.store(grid.addr(c), Some(l3));
                }
            }
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::{collect, ThreadFn};
    use stacksim_trace::TraceStats;

    #[test]
    fn avdf_and_avif_fit_baseline_l2() {
        let kernels: [ThreadFn; 2] = [avdf_thread, avif_thread];
        for f in kernels {
            let s = TraceStats::measure(&collect(f, &WorkloadParams::paper(), 0));
            assert!(s.footprint_mib() < 4.0, "{:.2} MiB", s.footprint_mib());
        }
    }

    #[test]
    fn us_footprint_is_around_10mb() {
        let s = TraceStats::measure(&collect(us_thread, &WorkloadParams::paper(), 0));
        assert!(
            s.footprint_mib() > 4.0 && s.footprint_mib() < 12.0,
            "{:.2}",
            s.footprint_mib()
        );
    }

    #[test]
    fn stencil_has_bounded_dep_chains() {
        let t = collect(avdf_thread, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        assert!(s.deps.dependent_records > 0);
        // chains are per-node; they must not serialise the whole sweep
        assert!(s.deps.max_chain < 64, "chain {}", s.deps.max_chain);
    }

    #[test]
    fn sweeps_revisit_the_grid() {
        let s = TraceStats::measure(&collect(us_thread, &WorkloadParams::test(), 0));
        let touches = s.records as f64 / s.footprint.unique_lines as f64;
        assert!(touches > 1.5, "touches/line {touches}");
    }
}
