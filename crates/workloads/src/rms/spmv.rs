//! The three sparse matrix-vector multiplication variants of Table 1:
//! `sMVM` (plain), `sSym` (symmetric, half storage, small) and `sTrans`
//! (transposed, scatter into a wide result vector).

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::sparse::SparsePattern;
use crate::tracer::{KernelTracer, ReduceChain};

/// `sMVM`: y = A·x over ~11 MB of CSR data, iterated so the matrix is
/// re-streamed; improves at 12/32 MB.
pub(crate) fn smvm_thread<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let rows = p.pick(400, 80_000) as u64;
    let nnz = p.pick(4, 9) as u64;
    let iters = p.pick(2, 4);
    let pat = SparsePattern::synth(rows, rows, nnz, 0.6, p.seed ^ 0x5317);

    let mut space = AddressSpace::new();
    let vals = space.alloc_f64(pat.nnz());
    let cols = space.alloc_u32(pat.nnz());
    let row_ptr = space.alloc_f64(rows + 1);
    let x = space.alloc_f64(rows);
    let y = space.alloc_f64(rows);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 384);
    t.attach_stack(stacks[tid], 2.5);
    let colds: Vec<_> = (0..p.threads).map(|_| space.alloc(4 << 20, 64)).collect();
    t.attach_cold_stream(colds[tid], 50);
    let my_rows = split_range(rows, p.threads, tid);
    for _ in 0..iters {
        for i in my_rows.clone() {
            let rp = t.load(row_ptr.addr(i), None);
            let mut chain = ReduceChain::new(8);
            let lo = pat.row_ptr[i as usize];
            let hi = pat.row_ptr[i as usize + 1];
            for k in lo..hi {
                let idx = t.load(cols.addr(k), Some(rp));
                t.load(vals.addr(k), Some(rp));
                t.reduce_load(x.addr(pat.col_idx[k as usize]), &mut chain, Some(idx));
            }
            t.store(y.addr(i), chain.tail());
        }
    }
    t.into_sink()
}

/// `sSym`: symmetric SpMV storing only the upper triangle — about half the
/// non-zeros of an equivalent full matrix and a ~2 MB footprint that fits
/// the baseline L2 (flat in Fig. 5). Each visited non-zero updates both
/// `y[i]` and `y[col]`.
pub(crate) fn ssym_thread<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let rows = p.pick(300, 30_000) as u64;
    let nnz = p.pick(4, 6) as u64;
    let iters = p.pick(2, 6);
    let pat = SparsePattern::synth(rows, rows, nnz, 0.9, p.seed ^ 0x55F);

    let mut space = AddressSpace::new();
    let vals = space.alloc_f64(pat.nnz());
    let cols = space.alloc_u32(pat.nnz());
    let row_ptr = space.alloc_f64(rows + 1);
    let x = space.alloc_f64(rows);
    let y = space.alloc_f64(rows);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 384);
    t.attach_stack(stacks[tid], 2.0);
    let my_rows = split_range(rows, p.threads, tid);
    for _ in 0..iters {
        for i in my_rows.clone() {
            let rp = t.load(row_ptr.addr(i), None);
            let mut chain = ReduceChain::new(8);
            let lo = pat.row_ptr[i as usize];
            let hi = pat.row_ptr[i as usize + 1];
            for k in lo..hi {
                let idx = t.load(cols.addr(k), Some(rp));
                t.load(vals.addr(k), Some(rp));
                let col = pat.col_idx[k as usize];
                t.reduce_load(x.addr(col), &mut chain, Some(idx));
                // symmetric counterpart: y[col] += v * x[i]
                let ly = t.load(y.addr(col), Some(idx));
                t.store(y.addr(col), Some(ly));
            }
            t.store(y.addr(i), chain.tail());
        }
    }
    t.into_sink()
}

/// `sTrans`: y = Aᵀ·x walked in row order of A — every non-zero scatters a
/// read-modify-write into a wide `y`, giving poor locality over ~25 MB and
/// the biggest relative gains from stacked DRAM capacity.
pub(crate) fn strans_thread<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let rows = p.pick(300, 60_000) as u64;
    let width = p.pick(2_000, 2_000_000) as u64; // y is 16 MB at paper scale
    let nnz = p.pick(4, 9) as u64;
    let iters = 2;
    let pat = SparsePattern::synth(rows, width, nnz, 0.2, p.seed ^ 0x7245);

    let mut space = AddressSpace::new();
    let vals = space.alloc_f64(pat.nnz());
    let cols = space.alloc_u32(pat.nnz());
    let row_ptr = space.alloc_f64(rows + 1);
    let x = space.alloc_f64(rows);
    let y = space.alloc_f64(width);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 384);
    t.attach_stack(stacks[tid], 3.5);
    let colds: Vec<_> = (0..p.threads).map(|_| space.alloc(4 << 20, 64)).collect();
    t.attach_cold_stream(colds[tid], 50);
    let my_rows = split_range(rows, p.threads, tid);
    for _ in 0..iters {
        for i in my_rows.clone() {
            let rp = t.load(row_ptr.addr(i), None);
            let lx = t.load(x.addr(i), Some(rp));
            let lo = pat.row_ptr[i as usize];
            let hi = pat.row_ptr[i as usize + 1];
            for k in lo..hi {
                let idx = t.load(cols.addr(k), Some(rp));
                t.load(vals.addr(k), Some(rp));
                let col = pat.col_idx[k as usize];
                // scatter: load y[col], add, store back — serialised on the
                // index load (address unknown until then)
                let ly = t.load(y.addr(col), Some(idx.max(lx)));
                t.store(y.addr(col), Some(ly));
            }
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::{collect, ThreadFn};
    use stacksim_trace::TraceStats;

    #[test]
    fn smvm_footprint_is_mid_sized() {
        let s = TraceStats::measure(&collect(smvm_thread, &WorkloadParams::paper(), 0));
        assert!(
            s.footprint_mib() > 5.0 && s.footprint_mib() < 14.0,
            "{:.2}",
            s.footprint_mib()
        );
    }

    #[test]
    fn ssym_footprint_fits_baseline() {
        let s = TraceStats::measure(&collect(ssym_thread, &WorkloadParams::paper(), 0));
        assert!(s.footprint_mib() < 4.0, "{:.2}", s.footprint_mib());
    }

    #[test]
    fn strans_footprint_is_large() {
        // per-thread footprint; the merged two-thread trace roughly doubles
        // the matrix half while sharing the scattered y
        let s = TraceStats::measure(&collect(strans_thread, &WorkloadParams::paper(), 0));
        assert!(s.footprint_mib() > 12.0, "{:.2}", s.footprint_mib());
    }

    #[test]
    fn strans_scatter_is_store_heavy_compared_to_smvm() {
        let p = WorkloadParams::test();
        let sm = TraceStats::measure(&collect(smvm_thread, &p, 0));
        let st = TraceStats::measure(&collect(strans_thread, &p, 0));
        assert!(st.store_fraction() > 1.05 * sm.store_fraction());
    }

    #[test]
    fn ssym_updates_both_triangles() {
        let t = collect(ssym_thread, &WorkloadParams::test(), 0);
        let s = TraceStats::measure(&t);
        // one y[i] store per row plus one y[col] store per nnz
        assert!(s.stores as f64 > 1.5 * 300.0, "stores: {}", s.stores);
    }

    #[test]
    fn all_three_traces_validate() {
        let p = WorkloadParams::test();
        let kernels: [ThreadFn; 3] = [smvm_thread, ssym_thread, strans_thread];
        for f in kernels {
            assert!(collect(f, &p, 0).validate().is_ok());
        }
    }
}
