//! `svd` — Singular Value Decomposition with the one-sided Jacobi method
//! (Table 1).
//!
//! Jacobi rotation rounds over column pairs of a ~1.8 MB dense matrix.
//! As in real one-sided Jacobi implementations the matrix is stored
//! column-contiguous, so column walks are sequential; the whole matrix
//! fits the baseline L2 — flat in Fig. 5.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::tracer::{KernelTracer, ReduceChain};

pub(crate) fn thread_trace<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let n = p.pick(64, 480) as u64;
    let rounds = p.pick(2, 5);

    let mut space = AddressSpace::new();
    let a = space.alloc_f64(n * n);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 512);
    t.attach_stack(stacks[tid], 1.5);
    // a Jacobi round pairs column i with column (i + round) mod n; threads
    // split the pair list
    let my_pairs = split_range(n / 2, p.threads, tid);

    for round in 0..rounds {
        for pair in my_pairs.clone() {
            let ci = pair * 2;
            let cj = (ci + 1 + round as u64) % n;
            // pass 1: compute the 2x2 Gram matrix of columns ci, cj
            let mut chain = ReduceChain::new(8);
            for row in 0..n {
                t.reduce_load(a.addr(ci * n + row), &mut chain, None);
                t.reduce_load(a.addr(cj * n + row), &mut chain, None);
            }
            let gram = chain.tail();
            // pass 2: apply the rotation to both columns
            for row in 0..n {
                let li = t.load(a.addr(ci * n + row), gram);
                let lj = t.load(a.addr(cj * n + row), gram);
                t.store(a.addr(ci * n + row), Some(li.max(lj)));
                t.store(a.addr(cj * n + row), Some(li.max(lj)));
            }
        }
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::collect;
    use stacksim_trace::TraceStats;

    #[test]
    fn footprint_fits_baseline_l2() {
        let s = TraceStats::measure(&collect(thread_trace, &WorkloadParams::paper(), 0));
        assert!(s.footprint_mib() < 4.0, "{:.2} MiB", s.footprint_mib());
    }

    #[test]
    fn rotation_pass_balances_loads_and_stores() {
        let s = TraceStats::measure(&collect(thread_trace, &WorkloadParams::test(), 0));
        // pass 1: 2n loads; pass 2: 2n loads + 2n stores => stores are 1/3
        let frac = s.store_fraction();
        assert!(frac > 0.25 && frac < 0.4, "store fraction {frac}");
    }

    #[test]
    fn gram_reduction_gates_the_rotation() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        // find a store and walk its dependency chain — it must reach a load
        // skip stack-model stores (no dependency); an algorithmic store
        // must chain back through the Gram reduction
        let store = t
            .iter()
            .find(|r| r.op.is_write() && r.dep.is_some())
            .expect("has dependent stores");
        let mut cur = store;
        let mut depth = 0;
        while let Some(dep) = cur.dep {
            cur = t.get(dep).unwrap();
            depth += 1;
            if depth > 10_000 {
                panic!("dependency chain does not terminate");
            }
        }
        assert!(
            depth >= 2,
            "stores hang off the Gram reduction, depth {depth}"
        );
    }
}
