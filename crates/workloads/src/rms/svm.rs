//! `svm` — Pattern Recognition Algorithm for Face Recognition in Images
//! (Table 1).
//!
//! SVM classification: every query image is scored against the full
//! support-vector set with kernel dot products. The SV matrix (~29 MB)
//! streams cyclically through the hierarchy — hopeless for 4/12 MB caches,
//! captured almost entirely by the 32/64 MB stacked DRAM, making svm the
//! biggest Fig. 5 winner.

use stacksim_trace::RecordSink;

use crate::layout::AddressSpace;
use crate::params::WorkloadParams;
use crate::rms::split_range;
use crate::tracer::{KernelTracer, ReduceChain};

pub(crate) fn thread_trace<S: RecordSink>(sink: S, p: &WorkloadParams, tid: usize) -> S {
    let svs = p.pick(200, 25_000) as u64;
    let feats = p.pick(32, 144) as u64; // feature floats per vector
    let queries = p.pick(2, 3);
    let vw = 8u64;

    let mut space = AddressSpace::new();
    let sv = space.alloc_f64(svs * feats); // 25k * 144 * 8 B = 28.8 MB
    let alpha = space.alloc_f64(svs);
    let query = space.alloc_f64(feats); // hot, register/L1-resident
    let scores = space.alloc_f64(64);

    let stacks: Vec<_> = (0..p.threads).map(|_| space.alloc_f64(256)).collect();
    let mut t = KernelTracer::with_sink(sink, 256);
    t.attach_stack(stacks[tid], 4.0);
    let colds: Vec<_> = (0..p.threads).map(|_| space.alloc(4 << 20, 64)).collect();
    t.attach_cold_stream(colds[tid], 50);
    let my_svs = split_range(svs, p.threads, tid);

    for q in 0..queries {
        // the query vector is touched once per scoring pass
        for fv in (0..feats).step_by(vw as usize) {
            t.load(query.addr(fv), None);
        }
        let mut score_chain = ReduceChain::new(8);
        for s in my_svs.clone() {
            // dot(query, sv_s): vector loads over the support vector; the
            // query stays in registers
            let mut chain = ReduceChain::new(8);
            for fv in (0..feats).step_by(vw as usize) {
                t.reduce_load(sv.addr(s * feats + fv), &mut chain, None);
            }
            // weight lookup and score accumulation
            t.reduce_load(alpha.addr(s), &mut score_chain, chain.tail());
        }
        t.store(scores.addr(q as u64 % 64), score_chain.tail());
    }
    t.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::collect;
    use stacksim_trace::TraceStats;

    #[test]
    fn footprint_is_between_12_and_32_mb() {
        let s = TraceStats::measure(&collect(thread_trace, &WorkloadParams::paper(), 0));
        // each thread streams half the SVs (~14.4 MB); merged: ~29 MB
        assert!(s.footprint_mib() > 10.0, "{:.2} MiB", s.footprint_mib());
        assert!(s.footprint_mib() < 32.0, "{:.2} MiB", s.footprint_mib());
    }

    #[test]
    fn scoring_itself_is_read_only() {
        let t = collect(thread_trace, &WorkloadParams::test(), 0);
        // every store in the trace comes from the stack model (independent)
        // or the per-query score write (dependent); SV scoring never writes
        let algorithmic_stores = t
            .iter()
            .filter(|r| r.op.is_write() && r.dep.is_some())
            .count();
        assert!(
            algorithmic_stores <= 4,
            "one score store per query, got {algorithmic_stores}"
        );
        let s = TraceStats::measure(&t);
        assert!(s.store_fraction() < 0.3, "stack stores stay bounded");
    }

    #[test]
    fn svs_are_restreamed_per_query() {
        let s = TraceStats::measure(&collect(thread_trace, &WorkloadParams::test(), 0));
        let touches = s.records as f64 / s.footprint.unique_lines as f64;
        assert!(touches > 1.5, "touches/line {touches}");
    }
}
