//! Deterministic synthetic sparse-matrix patterns (CSR) for the sparse RMS
//! kernels.

use stacksim_rng::StdRng;

/// A CSR sparsity pattern: row extents plus column indices. Values are not
//  stored — the kernels only need the address structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    /// Number of rows.
    pub rows: u64,
    /// Number of columns (width of the `x` vector in `y = A·x`).
    pub cols: u64,
    /// CSR row pointer (length `rows + 1`).
    pub row_ptr: Vec<u64>,
    /// Column index per non-zero, row-major.
    pub col_idx: Vec<u64>,
}

impl SparsePattern {
    /// Generates a pattern with `rows`×`cols` shape and roughly `avg_nnz`
    /// non-zeros per row. `band_fraction` of the entries cluster within a
    /// narrow band around the diagonal (good locality); the rest scatter
    /// uniformly (poor locality). Fully deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero, `avg_nnz` is zero, or
    /// `band_fraction` is outside `[0, 1]`.
    pub fn synth(rows: u64, cols: u64, avg_nnz: u64, band_fraction: f64, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert!(avg_nnz > 0, "need at least one non-zero per row");
        assert!(
            (0.0..=1.0).contains(&band_fraction),
            "band fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let band_width = (cols / 64).max(8);
        let mut row_ptr = Vec::with_capacity(rows as usize + 1);
        let mut col_idx = Vec::with_capacity((rows * avg_nnz) as usize);
        row_ptr.push(0);
        for r in 0..rows {
            // vary row length a little around the average
            let nnz = (avg_nnz as i64 + rng.gen_range(-1i64..=1)).max(1) as u64;
            let diag = r * cols / rows;
            for _ in 0..nnz {
                let c = if rng.gen_bool(band_fraction) {
                    let lo = diag.saturating_sub(band_width / 2);
                    let hi = (lo + band_width).min(cols - 1);
                    rng.gen_range(lo..=hi)
                } else {
                    rng.gen_range(0..cols)
                };
                col_idx.push(c);
            }
            row_ptr.push(col_idx.len() as u64);
        }
        SparsePattern {
            rows,
            cols,
            row_ptr,
            col_idx,
        }
    }

    /// Total non-zeros.
    pub fn nnz(&self) -> u64 {
        self.col_idx.len() as u64
    }

    /// Column indices of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: u64) -> &[u64] {
        let lo = self.row_ptr[row as usize] as usize;
        let hi = self.row_ptr[row as usize + 1] as usize;
        &self.col_idx[lo..hi]
    }

    /// Approximate CSR memory footprint in bytes (8 B values + 4 B column
    /// indices + 8 B row pointers), for sizing documentation.
    pub fn csr_bytes(&self) -> u64 {
        self.nnz() * (8 + 4) + (self.rows + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_consistent() {
        let p = SparsePattern::synth(100, 200, 5, 0.8, 42);
        assert_eq!(p.rows, 100);
        assert_eq!(p.row_ptr.len(), 101);
        assert_eq!(*p.row_ptr.last().unwrap(), p.nnz());
        for r in 0..100 {
            for &c in p.row(r) {
                assert!(c < p.cols);
            }
            assert!(!p.row(r).is_empty());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SparsePattern::synth(50, 50, 4, 0.5, 7);
        let b = SparsePattern::synth(50, 50, 4, 0.5, 7);
        let c = SparsePattern::synth(50, 50, 4, 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn banded_pattern_stays_near_diagonal() {
        let p = SparsePattern::synth(1000, 1000, 6, 1.0, 3);
        let band = 1000u64 / 64 + 1;
        for r in 0..1000 {
            for &c in p.row(r) {
                let diag = r;
                assert!(
                    c + band >= diag && c <= diag + band,
                    "row {r} col {c} outside band"
                );
            }
        }
    }

    #[test]
    fn avg_nnz_is_respected() {
        let p = SparsePattern::synth(10_000, 10_000, 7, 0.5, 1);
        let avg = p.nnz() as f64 / 10_000.0;
        assert!((avg - 7.0).abs() < 0.5, "avg nnz {avg}");
    }

    #[test]
    #[should_panic(expected = "band fraction")]
    fn invalid_band_fraction_panics() {
        let _ = SparsePattern::synth(10, 10, 2, 1.5, 0);
    }
}
