//! Generate-while-simulate: background trace generation as a block stream.
//!
//! [`TraceStream`] runs one producer thread per workload thread, each
//! emitting its kernel's records through a bounded
//! [`block_channel`](stacksim_trace::block_channel), and interleaves the
//! per-thread streams on the consumer side with exactly the round-robin
//! merge [`interleave`](stacksim_trace::interleave) performs on whole
//! traces. Concatenating the yielded blocks therefore reproduces
//! [`RmsBenchmark::generate`](crate::RmsBenchmark::generate) bit for bit —
//! the channels carry *data*, never *ordering*, so timing and buffering
//! cannot change the merged trace (see `DESIGN.md` §14).

use std::collections::VecDeque;
use std::thread::JoinHandle;

use stacksim_trace::StreamBuilder;
use stacksim_trace::{block_channel, BlockReceiver, CpuId, PackedRecord, RecordBlock};

use crate::params::WorkloadParams;
use crate::rms::RmsBenchmark;

/// Per-thread window of remembered merged positions. Dependency edges
/// reach at most this many records back *within one thread*; every RMS
/// kernel stays far below it (reduction chains are tens of records deep).
const POSITION_WINDOW: usize = 1 << 20;

/// Blocks buffered per producer channel before the producer blocks.
const CHANNEL_BLOCKS: usize = 8;

/// A live generate-while-simulate pipeline: per-thread producer threads
/// plus the consumer-side round-robin interleaver, exposed as an iterator
/// of fixed-size [`RecordBlock`]s (the final block may be shorter).
///
/// Dropping the stream early hangs up the channels, which lets the
/// producers wind down instead of blocking forever.
#[derive(Debug)]
pub struct TraceStream {
    threads: Vec<ThreadState>,
    handles: Vec<JoinHandle<()>>,
    block_len: usize,
    chunk: usize,
    /// Thread the round-robin is currently drawing from.
    cur_thread: usize,
    /// Records taken from `cur_thread` in its current chunk.
    taken_in_chunk: usize,
    /// Records merged so far (the next record's merged position).
    merged: u64,
}

/// Consumer-side state of one producer thread.
#[derive(Debug)]
struct ThreadState {
    rx: BlockReceiver,
    /// Received records not yet consumed.
    buf: VecDeque<PackedRecord>,
    /// The producer has hung up and `buf` is drained.
    exhausted: bool,
    /// Records consumed from this thread (the next record's own position).
    src: u64,
    /// Merged position of the last `POSITION_WINDOW` own records, indexed
    /// by own position modulo the window.
    map: Vec<u64>,
}

impl ThreadState {
    /// Takes the thread's next record, waiting on the channel if a block
    /// is still in flight. `None` once the producer is done.
    fn pop(&mut self) -> Option<PackedRecord> {
        if self.exhausted {
            return None;
        }
        while self.buf.is_empty() {
            match self.rx.recv() {
                Some(block) => self.buf.extend(block),
                None => {
                    self.exhausted = true;
                    return None;
                }
            }
        }
        self.buf.pop_front()
    }
}

impl TraceStream {
    /// Starts generating `bench` with `params.threads` producer threads and
    /// returns the merged stream in blocks of `block_len` records.
    ///
    /// # Panics
    ///
    /// Panics if `params.threads` is zero (or above 256), `params.chunk`
    /// is zero, or `block_len` is zero.
    pub fn spawn(bench: RmsBenchmark, params: WorkloadParams, block_len: usize) -> TraceStream {
        assert!(params.threads > 0, "need at least one thread");
        assert!(params.threads <= 256, "at most 256 threads supported");
        assert!(params.chunk > 0, "interleave chunk must be positive");
        assert!(block_len > 0, "stream block length must be positive");
        let mut threads = Vec::with_capacity(params.threads);
        let mut handles = Vec::with_capacity(params.threads);
        for tid in 0..params.threads {
            let (tx, rx) = block_channel(CHANNEL_BLOCKS);
            handles.push(std::thread::spawn(move || {
                bench
                    .emit_thread(StreamBuilder::new(tx, block_len), &params, tid)
                    .finish();
            }));
            threads.push(ThreadState {
                rx,
                buf: VecDeque::new(),
                exhausted: false,
                src: 0,
                map: vec![0; POSITION_WINDOW],
            });
        }
        TraceStream {
            threads,
            handles,
            block_len,
            chunk: params.chunk,
            cur_thread: 0,
            taken_in_chunk: 0,
            merged: 0,
        }
    }

    /// Record count of the blocks this stream yields (the final block may
    /// be shorter).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// An upper bound on the merged backward dependency distance: within
    /// one thread an edge spans at most `POSITION_WINDOW` own records, and
    /// while those drain every other thread interposes at most the same
    /// span plus two partial chunks. Suitable as the `dep_window` argument
    /// of the engine's block-streaming run.
    pub fn dep_window(&self) -> usize {
        self.threads.len() * (POSITION_WINDOW + 2 * self.chunk)
    }

    /// Takes the next record in merged order, replicating the round-robin
    /// of [`interleave`](stacksim_trace::interleave): `chunk` records per
    /// thread visit, threads in index order, exhausted threads skipped.
    fn next_record(&mut self) -> Option<PackedRecord> {
        loop {
            if self.threads.iter().all(|t| t.exhausted) {
                self.join_producers();
                return None;
            }
            if self.taken_in_chunk < self.chunk {
                let ti = self.cur_thread;
                if let Some(p) = self.threads[ti].pop() {
                    self.taken_in_chunk += 1;
                    return Some(self.remap(ti, p));
                }
            }
            self.cur_thread = (self.cur_thread + 1) % self.threads.len();
            self.taken_in_chunk = 0;
        }
    }

    /// Re-labels one record with its thread's cpu id and rewrites its
    /// dependency offset from thread-local to merged positions — the
    /// per-record body of the batch merge loop.
    fn remap(&mut self, ti: usize, p: PackedRecord) -> PackedRecord {
        let st = &mut self.threads[ti];
        let dep_offset = if p.has_dep() {
            let d = p.dep_offset() as u64;
            assert!(
                d <= POSITION_WINDOW as u64,
                "dependency distance {d} exceeds the streaming position window"
            );
            let producer = st.map[((st.src - d) as usize) % POSITION_WINDOW];
            let dist = self.merged - producer;
            assert!(
                dist <= u64::from(u32::MAX),
                "merged dependency distance {dist} exceeds the packed-record range"
            );
            dist as u32
        } else {
            0
        };
        st.map[(st.src as usize) % POSITION_WINDOW] = self.merged;
        st.src += 1;
        self.merged += 1;
        PackedRecord::new(CpuId::new(ti as u8), p.op(), p.addr, p.ip, dep_offset)
    }

    /// Joins finished producers, propagating any kernel panic.
    fn join_producers(&mut self) {
        for h in self.handles.drain(..) {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Iterator for TraceStream {
    type Item = RecordBlock;

    fn next(&mut self) -> Option<RecordBlock> {
        let mut out = Vec::with_capacity(self.block_len);
        while out.len() < self.block_len {
            match self.next_record() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

impl Drop for TraceStream {
    fn drop(&mut self) {
        // hang up the channels first so blocked producers bail out
        self.threads.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_trace::Trace;

    #[test]
    fn streamed_blocks_concatenate_to_the_batch_trace() {
        let p = WorkloadParams::test();
        let batch = RmsBenchmark::SMvm.generate(&p);
        for block_len in [1usize, 64, 4096] {
            let stream = RmsBenchmark::SMvm.stream(&p, block_len);
            let mut packed = Vec::new();
            for block in stream {
                assert!(block.len() <= block_len);
                packed.extend(block);
            }
            assert_eq!(
                Trace::from_packed(packed),
                batch,
                "block_len {block_len} must reproduce the batch trace"
            );
        }
    }

    #[test]
    fn streaming_matches_batch_for_every_benchmark() {
        let p = WorkloadParams::test();
        for b in RmsBenchmark::all() {
            let batch = b.generate(&p);
            let packed: Vec<PackedRecord> = b.stream(&p, 1024).flatten().collect();
            assert_eq!(Trace::from_packed(packed), batch, "{b}");
        }
    }

    #[test]
    fn streaming_matches_batch_at_other_thread_counts() {
        for threads in [1usize, 4] {
            let p = WorkloadParams::builder()
                .scale(crate::Scale::Test)
                .threads(threads)
                .build();
            let batch = RmsBenchmark::Gauss.generate(&p);
            let packed: Vec<PackedRecord> = RmsBenchmark::Gauss.stream(&p, 256).flatten().collect();
            assert_eq!(Trace::from_packed(packed), batch, "threads {threads}");
        }
    }

    #[test]
    fn early_drop_does_not_hang_the_producers() {
        let p = WorkloadParams::test();
        let mut stream = RmsBenchmark::Pcg.stream(&p, 64);
        let first = stream.next();
        assert!(first.is_some());
        drop(stream); // must hang up and join without deadlocking
    }

    #[test]
    fn dep_window_bounds_every_merged_edge() {
        let p = WorkloadParams::test();
        let stream = RmsBenchmark::Svm.stream(&p, 512);
        let window = stream.dep_window();
        let mut pos = 0u64;
        for block in stream {
            for r in block {
                assert!(u64::from(r.dep_offset()) <= window as u64, "at {pos}");
                pos += 1;
            }
        }
    }
}
