//! Per-thread trace emission helper for workload kernels.

use stacksim_trace::{CpuId, MemOp, RecordId, RecordSink, Trace, TraceBuilder};

use crate::layout::Region;

/// Emits one thread's memory-reference stream with dataflow dependencies.
///
/// Kernels call [`load`](KernelTracer::load) / [`store`](KernelTracer::store)
/// in the order the algorithm would execute them, passing the id of the
/// producing reference when the access is data-dependent (e.g. an indirect
/// load through a just-loaded index). Instruction pointers advance through a
/// small synthetic code region, wrapping per "loop", so the IP field looks
/// like a real inner loop.
///
/// Generic over the [`RecordSink`] the records land in: a [`TraceBuilder`]
/// materialises the thread trace (the default), a
/// [`StreamBuilder`](stacksim_trace::StreamBuilder) pushes fixed-size
/// packed blocks through a channel so generation overlaps simulation. The
/// emitted record sequence is identical either way.
#[derive(Debug)]
pub struct KernelTracer<S: RecordSink = TraceBuilder> {
    sink: S,
    ip_base: u64,
    ip: u64,
    ip_span: u64,
    stack: Option<StackModel>,
    cold: Option<ColdStream>,
}

/// Models the main-memory-resident fraction of the working set: RMS
/// applications "target systems with main memory requirements that cannot
/// be incorporated in a two-die stack" (§1), so a slice of their references
/// streams through data no cache level retains. One cold load is emitted
/// every `every_n` data references, walking a region far larger than the
/// largest stacked cache.
#[derive(Debug)]
struct ColdStream {
    region: Region,
    every_n: u64,
    count: u64,
    offset: u64,
    last: Option<RecordId>,
}

/// Models the register-spill/stack/local traffic that surrounds the data
/// references of a real application: a small, L1-resident region touched at
/// a fixed ratio per data reference. The paper's traces contain *every*
/// memory instruction of the application, most of which hit small hot
/// structures; without this component a synthetic trace is all cold misses
/// and its CPMA is wildly pessimistic.
#[derive(Debug)]
struct StackModel {
    region: Region,
    ratio: f64,
    budget: f64,
    next: u64,
    count: u64,
}

impl KernelTracer {
    /// Creates a materialising tracer for one thread. `code_bytes` is the
    /// size of the synthetic inner-loop code region its IPs cycle through.
    pub fn new(code_bytes: u64) -> Self {
        Self::with_sink(TraceBuilder::new(), code_bytes)
    }

    /// Creates a tracer with a default 256-byte inner loop.
    pub fn with_default_loop() -> Self {
        Self::new(256)
    }

    /// Finishes the thread stream.
    pub fn finish(self) -> Trace {
        self.sink.build()
    }
}

impl<S: RecordSink> KernelTracer<S> {
    /// Creates a tracer emitting into an explicit sink.
    pub fn with_sink(sink: S, code_bytes: u64) -> Self {
        KernelTracer {
            sink,
            ip_base: 0x40_0000,
            ip: 0,
            ip_span: code_bytes.max(4),
            stack: None,
            cold: None,
        }
    }

    /// Attaches a cold main-memory stream: every `every_n`-th data
    /// reference is followed by a load that walks `region` at cache-line
    /// granularity, wrapping at the end. The region should far exceed the
    /// largest cache under study.
    ///
    /// # Panics
    ///
    /// Panics if `every_n` is zero or the region is empty.
    pub fn attach_cold_stream(&mut self, region: Region, every_n: u64) {
        assert!(every_n > 0, "cold-stream interval must be positive");
        assert!(!region.is_empty(), "cold-stream region must be non-empty");
        self.cold = Some(ColdStream {
            region,
            every_n,
            count: 0,
            offset: 0,
            last: None,
        });
    }

    /// Attaches a stack/local-traffic model: for every data reference the
    /// kernel emits, `ratio` additional references cycle through the given
    /// small region (spills, locals, loop bookkeeping). Roughly every third
    /// stack reference is a store.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or the region is empty.
    pub fn attach_stack(&mut self, region: Region, ratio: f64) {
        assert!(ratio >= 0.0, "stack ratio must be non-negative");
        assert!(!region.is_empty(), "stack region must be non-empty");
        self.stack = Some(StackModel {
            region,
            ratio,
            budget: 0.0,
            next: 0,
            count: 0,
        });
    }

    fn next_ip(&mut self) -> u64 {
        let ip = self.ip_base + self.ip;
        self.ip = (self.ip + 4) % self.ip_span;
        ip
    }

    /// Emits a load; returns its id for downstream dependencies.
    pub fn load(&mut self, addr: u64, dep: Option<RecordId>) -> RecordId {
        let ip = self.next_ip();
        let id = self
            .sink
            .record_dep(CpuId::new(0), MemOp::Load, addr, ip, dep);
        self.emit_cold_ref();
        self.emit_stack_refs();
        id
    }

    /// Emits a store; returns its id.
    pub fn store(&mut self, addr: u64, dep: Option<RecordId>) -> RecordId {
        let ip = self.next_ip();
        let id = self
            .sink
            .record_dep(CpuId::new(0), MemOp::Store, addr, ip, dep);
        self.emit_cold_ref();
        self.emit_stack_refs();
        id
    }

    fn emit_cold_ref(&mut self) {
        let Some(cold) = self.cold.as_mut() else {
            return;
        };
        cold.count += 1;
        if !cold.count.is_multiple_of(cold.every_n) {
            return;
        }
        // a pointer chase: each cold reference loads the address of the
        // next (linked structures walked out of main memory), scattering
        // across the region so no cache level retains it
        let addr = cold.region.byte_addr(cold.offset);
        cold.offset = (cold.offset + 64 * 1031) % cold.region.len();
        let ip = self.ip_base + self.ip_span + 128;
        let id = self
            .sink
            .record_dep(CpuId::new(0), MemOp::Load, addr, ip, cold.last);
        if let Some(cold) = self.cold.as_mut() {
            cold.last = Some(id);
        }
    }

    fn emit_stack_refs(&mut self) {
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        stack.budget += stack.ratio;
        while stack.budget >= 1.0 {
            stack.budget -= 1.0;
            let addr = stack.region.addr(stack.next);
            stack.next = (stack.next + 1) % stack.region.elems();
            let op = if stack.count % 3 == 2 {
                MemOp::Store
            } else {
                MemOp::Load
            };
            stack.count += 1;
            let ip = self.ip_base + self.ip_span + (stack.count % 16) * 4;
            self.sink.record_dep(CpuId::new(0), op, addr, ip, None);
        }
    }

    /// Emits a load that participates in a reduction: the access depends on
    /// the chain element from `ilp` calls ago — modelling an unrolled
    /// reduction with `ilp` independent accumulators, each reused once per
    /// unroll round. If an explicit `dep` (e.g. an index load) is also given,
    /// the later of the two producers wins, since it is the binding one.
    /// Returns the id to chain from next.
    pub fn reduce_load(
        &mut self,
        addr: u64,
        chain: &mut ReduceChain,
        dep: Option<RecordId>,
    ) -> RecordId {
        let slot = (chain.count % chain.ilp) as usize;
        let chained = chain.ring[slot];
        let effective = match (chained, dep) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let id = self.load(addr, effective);
        chain.ring[slot] = Some(id);
        chain.count += 1;
        id
    }

    /// Records emitted so far.
    pub fn len(&self) -> usize {
        self.sink.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.sink.is_empty()
    }

    /// Hands the sink back (for sinks with their own completion step,
    /// e.g. flushing a final partial block).
    pub fn into_sink(self) -> S {
        self.sink
    }
}

/// State of an unrolled reduction chain (see [`KernelTracer::reduce_load`]).
#[derive(Debug, Clone)]
pub struct ReduceChain {
    ilp: u64,
    count: u64,
    ring: Vec<Option<RecordId>>,
}

impl ReduceChain {
    /// A chain with `ilp` independent accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `ilp` is zero.
    pub fn new(ilp: u64) -> Self {
        assert!(ilp > 0, "reduction ILP must be positive");
        ReduceChain {
            ilp,
            count: 0,
            ring: vec![None; ilp as usize],
        }
    }

    /// Id of the most recent chain element, to hang a final store off.
    pub fn tail(&self) -> Option<RecordId> {
        self.ring.iter().flatten().max().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_stores_are_recorded_in_order() {
        let mut t = KernelTracer::with_default_loop();
        let a = t.load(0x1000, None);
        let b = t.store(0x2000, Some(a));
        assert_eq!(t.len(), 2);
        let records = t.finish().to_records();
        assert_eq!(records[0].op, MemOp::Load);
        assert_eq!(records[1].op, MemOp::Store);
        assert_eq!(records[1].dep, Some(a));
        assert!(b > a);
    }

    #[test]
    fn ips_cycle_through_the_loop_body() {
        let mut t = KernelTracer::new(8); // two instruction slots
        t.load(0, None);
        t.load(0, None);
        t.load(0, None);
        let records = t.finish().to_records();
        assert_eq!(records[0].ip, records[2].ip);
        assert_ne!(records[0].ip, records[1].ip);
    }

    #[test]
    fn reduce_chain_serialises_every_ilp_th_load() {
        let mut t = KernelTracer::with_default_loop();
        let mut chain = ReduceChain::new(2);
        let ids: Vec<_> = (0..6)
            .map(|i| t.reduce_load(0x1000 + i * 64, &mut chain, None))
            .collect();
        let trace = t.finish();
        // two accumulators: load i depends on load i-2
        assert_eq!(trace.get(ids[0]).unwrap().dep, None);
        assert_eq!(trace.get(ids[1]).unwrap().dep, None);
        assert_eq!(trace.get(ids[2]).unwrap().dep, Some(ids[0]));
        assert_eq!(trace.get(ids[3]).unwrap().dep, Some(ids[1]));
        assert_eq!(trace.get(ids[4]).unwrap().dep, Some(ids[2]));
        assert_eq!(trace.get(ids[5]).unwrap().dep, Some(ids[3]));
        assert_eq!(chain.tail(), Some(ids[5]));
    }

    #[test]
    fn reduce_chain_prefers_explicit_dep_between_ticks() {
        let mut t = KernelTracer::with_default_loop();
        let mut chain = ReduceChain::new(4);
        let idx = t.load(0x100, None);
        let v = t.reduce_load(0x2000, &mut chain, Some(idx));
        let trace = t.finish();
        assert_eq!(trace.get(v).unwrap().dep, Some(idx));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ilp_panics() {
        let _ = ReduceChain::new(0);
    }
}
