//! Repository automation (`cargo xtask <task>`).
//!
//! * **`lint`** — the unwrap ratchet: no *new* `unwrap`/`expect` calls
//!   outside `#[cfg(test)]` blocks. Existing calls are recorded in
//!   `lint-baseline.txt` at the repo root; the count per file may only go
//!   down. Shrink it with `cargo xtask lint --update-baseline` after
//!   converting call sites to `Result`. The scanner is deliberately
//!   textual (no syn, no new dependencies): it strips `//` comments,
//!   tracks brace depth to skip `#[cfg(test)]` modules, and never matches
//!   the `_or`/`_or_else`/`_or_default` and `_err` variants, which are
//!   fine.
//! * **`audit`** — the six SA-coded determinism & concurrency passes from
//!   `stacksim-audit` (map-iteration order into digests, wall-clock
//!   taint, unordered float reductions, lock-order cycles, relaxed
//!   atomics, panic paths), ratcheted against `audit-baseline.txt`. The
//!   old textual map-iteration heuristic that used to live here was
//!   replaced by the audit's intra-procedural SA001 pass.
//! * **`loom`** — the exhaustive interleaving models from
//!   `stacksim-modelcheck` (spin barrier, session dedup slots), which are
//!   too slow for the default `cargo test` profile.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use stacksim_lint::Severity;

/// One ratchet finding: an `unwrap`/`expect` call outside tests.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    line: usize,
    kind: &'static str,
    text: String,
}

/// The needles are assembled at runtime so the scanner never matches its
/// own source (which is excluded from the walk anyway, but belt and
/// braces).
fn needles() -> [(String, &'static str); 2] {
    [
        ([".un", "wrap("].concat(), "unwrap"),
        ([".ex", "pect("].concat(), "expect"),
    ]
}

/// Strips a `//` comment from one line, respecting string literals well
/// enough for this codebase (no multi-line strings in scanned positions).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if escaped {
                escaped = false;
            } else if c == b'\\' {
                escaped = true;
            } else if c == b'"' {
                in_str = false;
            }
        } else if c == b'"' {
            in_str = true;
        } else if c == b'\'' && i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
            // simple char literal like '"'
            i += 2;
        } else if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            return &line[..i];
        }
        i += 1;
    }
    line
}

fn brace_delta(line: &str) -> i64 {
    let mut delta = 0;
    for c in line.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Marks each line as test code (inside a `#[cfg(test)]` module or item)
/// or not.
fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut skip_until: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (i, raw) in lines.iter().enumerate() {
        let line = strip_comment(raw);
        if let Some(until) = skip_until {
            mask[i] = true;
            depth += brace_delta(line);
            if depth <= until {
                skip_until = None;
            }
            continue;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            mask[i] = true;
            depth += brace_delta(line);
            continue;
        }
        if pending_cfg_test {
            mask[i] = true;
            let before = depth;
            depth += brace_delta(line);
            if depth > before {
                // the guarded item opened its block
                skip_until = Some(before);
                pending_cfg_test = false;
            } else if line.trim().ends_with(';') {
                // a guarded one-liner (`mod tests;`, `use ...;`)
                pending_cfg_test = false;
            }
            continue;
        }
        depth += brace_delta(line);
    }
    mask
}

/// Scans one file's source for `unwrap`/`expect` calls outside tests.
fn scan_ratchet(source: &str) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let mask = test_mask(&lines);
    let needles = needles();
    let mut out = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || raw.contains("lint:allow(unwrap)") {
            continue;
        }
        let line = strip_comment(raw);
        for (needle, kind) in &needles {
            if line.contains(needle.as_str()) {
                out.push(Finding {
                    line: i + 1,
                    kind,
                    text: raw.trim().to_string(),
                });
            }
        }
    }
    out
}

/// Collects the non-test source trees to scan: `src/` and every
/// `crates/*/src/` except `crates/xtask` (this tool's own source holds the
/// needle fragments as data).
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut dirs = vec![root.join("src")];
    for entry in std::fs::read_dir(root.join("crates"))? {
        let path = entry?.path();
        if path.is_dir() && path.file_name().is_some_and(|n| n != "xtask") {
            dirs.push(path.join("src"));
        }
    }
    let mut files = Vec::new();
    while let Some(dir) = dirs.pop() {
        if !dir.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Parses `lint-baseline.txt`: `<count> <path>` per line.
fn parse_baseline(text: &str) -> Vec<(String, usize)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let count: usize = parts.next()?.parse().ok()?;
            let path = parts.next()?.to_string();
            Some((path, count))
        })
        .collect()
}

fn render_baseline(counts: &[(String, usize)]) -> String {
    let mut out = String::from(
        "# unwrap/expect ratchet baseline: `<count> <file>` of calls outside tests.\n\
         # Counts may only decrease; regenerate with `cargo xtask lint --update-baseline`.\n",
    );
    for (path, count) in counts {
        let _ = writeln!(out, "{count} {path}");
    }
    out
}

/// Compares fresh per-file counts against the baseline. Returns
/// human-readable problems; empty means the ratchet holds exactly.
fn compare_to_baseline(
    current: &[(String, Vec<Finding>)],
    baseline: &[(String, usize)],
) -> Vec<String> {
    let mut problems = Vec::new();
    for (path, findings) in current {
        let allowed = baseline
            .iter()
            .find(|(p, _)| p == path)
            .map_or(0, |(_, c)| *c);
        if findings.len() > allowed {
            let mut msg = format!(
                "{path}: {} unwrap/expect call(s), baseline allows {allowed}:",
                findings.len()
            );
            for f in findings {
                let _ = write!(msg, "\n  line {}: [{}] {}", f.line, f.kind, f.text);
            }
            problems.push(msg);
        } else if findings.len() < allowed {
            problems.push(format!(
                "{path}: baseline is stale ({allowed} allowed, {} present); \
                 run `cargo xtask lint --update-baseline` to ratchet down",
                findings.len()
            ));
        }
    }
    for (path, allowed) in baseline {
        if *allowed > 0 && !current.iter().any(|(p, _)| p == path) {
            problems.push(format!(
                "{path}: in the baseline ({allowed} allowed) but no longer scanned; \
                 run `cargo xtask lint --update-baseline`"
            ));
        }
    }
    problems
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn lint(update_baseline: bool) -> Result<bool, String> {
    let root = repo_root();
    let files = collect_sources(&root).map_err(|e| format!("walking sources: {e}"))?;

    let mut current: Vec<(String, Vec<Finding>)> = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let findings = scan_ratchet(&text);
        if !findings.is_empty() {
            current.push((rel, findings));
        }
    }

    let baseline_path = root.join("lint-baseline.txt");
    if update_baseline {
        let counts: Vec<(String, usize)> =
            current.iter().map(|(p, f)| (p.clone(), f.len())).collect();
        std::fs::write(&baseline_path, render_baseline(&counts))
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "baseline updated: {} file(s), {} call(s)",
            counts.len(),
            counts.iter().map(|(_, c)| c).sum::<usize>()
        );
        return Ok(true);
    }

    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "{}: {e} (run `cargo xtask lint --update-baseline` once)",
            baseline_path.display()
        )
    })?;
    let baseline = parse_baseline(&baseline_text);
    let mut ok = true;

    for problem in compare_to_baseline(&current, &baseline) {
        eprintln!("ratchet: {problem}");
        ok = false;
    }

    if ok {
        let total: usize = current.iter().map(|(_, f)| f.len()).sum();
        println!(
            "lint clean: {} source file(s), ratchet at {total} grandfathered call(s)",
            files.len()
        );
    }
    Ok(ok)
}

/// Runs the six SA-coded audit passes and ratchets the error-severity
/// findings against `audit-baseline.txt`.
fn audit(update_baseline: bool, json: bool) -> Result<bool, String> {
    let root = repo_root();
    let audit =
        stacksim_audit::run(&root, update_baseline).map_err(|e| format!("audit scan: {e}"))?;
    if json {
        println!("{}", audit.report.render_json());
    } else {
        print!("{}", audit.report.render_pretty());
    }
    if update_baseline {
        eprintln!("audit baseline updated ({})", stacksim_audit::BASELINE_FILE);
        return Ok(true);
    }
    let mut ok = true;
    for d in &audit.verdict.new_errors {
        eprintln!(
            "audit: new {} error at {} not in the baseline: {}",
            d.code, d.span, d.message
        );
        ok = false;
    }
    for key in &audit.verdict.stale {
        eprintln!(
            "audit: baseline entry `{key}` no longer matches; \
             run `cargo xtask audit --update-baseline` to ratchet down"
        );
        ok = false;
    }
    if ok && !json {
        let warnings = audit
            .report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        eprintln!(
            "audit clean: {} file(s) scanned across {} passes, {} warning(s)",
            audit.files_scanned,
            stacksim_audit::PASS_CODES.len(),
            warnings
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (task, rest) = match args.split_first() {
        Some((t, r)) => (t.as_str(), r),
        None => ("", &args[..]),
    };
    match task {
        "lint" => {
            let update = rest.iter().any(|a| a == "--update-baseline");
            let unknown: Vec<&String> = rest.iter().filter(|a| *a != "--update-baseline").collect();
            if !unknown.is_empty() {
                eprintln!("xtask lint: unknown option(s) {unknown:?}");
                return ExitCode::from(2);
            }
            match lint(update) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "audit" => {
            let update = rest.iter().any(|a| a == "--update-baseline");
            let mut json = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--update-baseline" => {}
                    "--format" => {
                        i += 1;
                        match rest.get(i).map(String::as_str) {
                            Some("json") => json = true,
                            Some("pretty") => json = false,
                            other => {
                                eprintln!("xtask audit: bad --format {other:?}");
                                return ExitCode::from(2);
                            }
                        }
                    }
                    other => {
                        eprintln!("xtask audit: unknown option `{other}`");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            match audit(update, json) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "loom" => {
            if !rest.is_empty() {
                eprintln!("xtask loom: unknown option(s) {rest:?}");
                return ExitCode::from(2);
            }
            match stacksim_modelcheck::run_all() {
                Ok(summary) => {
                    println!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask loom: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <lint|audit> [--update-baseline] [--format json|pretty]\n\
                 \x20      cargo xtask loom"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_unwrap_and_expect_outside_tests() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"boom\");\n}\n";
        let found = scan_ratchet(src);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].kind, "unwrap");
        assert_eq!(found[0].line, 2);
        assert_eq!(found[1].kind, "expect");
    }

    #[test]
    fn ignores_test_modules_fallbacks_and_comments() {
        let src = "\
fn f() {
    let a = g().unwrap_or_else(|e| e.into_inner());
    let b = g().unwrap_or_default();
    // calling .unwrap() here would be bad
    let c = o.expect_err(\"must fail\");
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        g().unwrap();
        h().expect(\"fine in tests\");
    }
}
";
        assert!(scan_ratchet(src).is_empty());
    }

    #[test]
    fn waiver_comment_suppresses_a_line() {
        let src = "fn f() {\n    g().unwrap(); // lint:allow(unwrap) poisoning is unrecoverable here\n}\n";
        assert!(scan_ratchet(src).is_empty());
    }

    #[test]
    fn a_new_unwrap_fails_against_the_baseline() {
        // the scenario the ratchet exists for: someone adds an unwrap to a
        // clean file
        let src = "fn f() {\n    g().unwrap();\n}\n";
        let current = vec![("crates/foo/src/lib.rs".to_string(), scan_ratchet(src))];
        let baseline: Vec<(String, usize)> = Vec::new();
        let problems = compare_to_baseline(&current, &baseline);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("baseline allows 0"));
    }

    #[test]
    fn grandfathered_counts_pass_and_stale_baselines_fail() {
        let src = "fn f() {\n    g().unwrap();\n}\n";
        let current = vec![("a.rs".to_string(), scan_ratchet(src))];
        let exact = vec![("a.rs".to_string(), 1)];
        assert!(compare_to_baseline(&current, &exact).is_empty());

        let stale = vec![("a.rs".to_string(), 5)];
        let problems = compare_to_baseline(&current, &stale);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("stale"));
    }

    #[test]
    fn baseline_round_trips() {
        let counts = vec![("a.rs".to_string(), 3), ("b/c.rs".to_string(), 1)];
        assert_eq!(parse_baseline(&render_baseline(&counts)), counts);
    }
}
