//! Design-space extension beyond the paper's four points: sweep the
//! stacked-DRAM capacity continuously and find where each benchmark's
//! working set is captured.
//!
//! ```sh
//! cargo run --release --example capacity_sweep [bench ...]
//! ```

use stacksim::mem::{
    CacheConfig, Engine, EngineConfig, HierarchyConfig, MemoryHierarchy, StackedLevel,
};
use stacksim::workloads::{RmsBenchmark, WorkloadParams};

fn dram_hierarchy(mb: u64) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::stacked_dram_32mb();
    if let StackedLevel::Dram { cache, .. } = &mut cfg.stacked {
        // keep the set count a power of two: 3*2^k capacities use 12 ways
        let ways = if mb.is_power_of_two() { 8 } else { 12 };
        *cache = CacheConfig {
            capacity: mb << 20,
            ways,
            ..*cache
        };
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<RmsBenchmark> = if args.is_empty() {
        vec![RmsBenchmark::Gauss, RmsBenchmark::SUs, RmsBenchmark::Svm]
    } else {
        RmsBenchmark::all()
            .into_iter()
            .filter(|b| args.contains(&b.name().to_string()))
            .collect()
    };
    let capacities = [8u64, 16, 24, 32, 48, 64, 96];
    let params = WorkloadParams::paper();

    print!("{:>8}", "bench");
    for mb in capacities {
        print!(" {mb:>6}MB");
    }
    println!();
    for b in benches {
        let trace = b.generate(&params);
        print!("{:>8}", b.name());
        for mb in capacities {
            let mut e = Engine::new(
                MemoryHierarchy::new(dram_hierarchy(mb)).expect("valid sweep config"),
                EngineConfig::default(),
            );
            let r = e.run_warmed(&trace, 0.4);
            print!(" {:>8.3}", r.cpma);
        }
        println!();
    }
    println!();
    println!("CPMA flattens once the stacked DRAM captures the benchmark's working set;");
    println!("the paper's 32/64 MB points are two samples of these curves.");
}
