//! Logic+Logic exploration: fold the P4-class planar floorplan onto two
//! dies, run the cycle-level core model planar vs 3D on every workload
//! class, and trade the gains for power via voltage scaling — §4 end to
//! end.
//!
//! ```sh
//! cargo run --release --example logic_stacking
//! ```

use stacksim::floorplan::p4::pentium4_147w;
use stacksim::floorplan::{fold, FoldOptions};
use stacksim::ooo::{CoreConfig, Simulator, WorkloadClass};
use stacksim::power::scaling::ScalingModel;

fn main() {
    // 1. the physical fold: 50% footprint, hotspot-aware placement
    let planar = pentium4_147w();
    let folded = fold(&planar, FoldOptions::default()).expect("P4 folds");
    println!(
        "fold: {:.0} mm^2 planar -> 2 x {:.0} mm^2, power {:.0} W -> {:.0} W",
        planar.area(),
        folded.dies()[0].area(),
        planar.total_power(),
        folded.total_power()
    );
    println!(
        "peak stacked power density: {:.2}x planar (paper: ~1.3x after repair)",
        folded.peak_stacked_density(48, 40) / planar.power_grid(48, 40).peak_density()
    );
    println!();

    // 2. the microarchitectural payoff: shorter wire paths on every class
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "class", "planar IPC", "3D IPC", "gain"
    );
    let planar_sim = Simulator::new(CoreConfig::planar());
    let folded_sim = Simulator::new(CoreConfig::folded_3d());
    let mut gains = Vec::new();
    for class in WorkloadClass::all() {
        let uops = class.generate(40_000, 7);
        let p = planar_sim.run(&uops);
        let f = folded_sim.run(&uops);
        let gain = f.ipc() / p.ipc() - 1.0;
        gains.push(gain);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>7.1}%",
            class.name(),
            p.ipc(),
            f.ipc(),
            100.0 * gain
        );
    }
    let avg = 100.0 * gains.iter().sum::<f64>() / gains.len() as f64;
    println!("{:<14} {:>10} {:>10} {:>7.1}%", "average", "", "", avg);
    println!();

    // 3. spend the gains: scale voltage/frequency down to the planar
    //    performance level and bank the power (Table 5's "Same Perf." row)
    let model = ScalingModel::fig11_3d();
    let same_perf = model.scale_to_perf(100.0);
    println!(
        "scaling the 3D design back to planar performance: Vcc {:.2}, f {:.2} -> {:.1} W \
         ({:.0}% of the 147 W baseline)",
        same_perf.vcc,
        same_perf.freq,
        model.power(same_perf),
        100.0 * model.power(same_perf) / 147.0
    );
}
