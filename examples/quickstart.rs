//! Quickstart: simulate one RMS benchmark on the baseline hierarchy and on
//! the 32 MB stacked-DRAM option, then compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stacksim::mem::{Engine, EngineConfig, HierarchyConfig, MemoryHierarchy};
use stacksim::power::bus_power_w;
use stacksim::trace::TraceStats;
use stacksim::workloads::{RmsBenchmark, WorkloadParams};

fn main() {
    // 1. generate a two-threaded memory trace for the `gauss` RMS kernel
    //    (Gauss-Jordan elimination over a ~20 MB matrix)
    let params = WorkloadParams::paper();
    let trace = RmsBenchmark::Gauss.generate(&params);
    let stats = TraceStats::measure(&trace);
    println!(
        "trace: {} references, {:.1} MiB footprint, {:.0}% loads",
        stats.records,
        stats.footprint_mib(),
        100.0 * stats.loads as f64 / stats.records as f64
    );

    // 2. drive the baseline Core 2 Duo–class hierarchy (Table 3 of the
    //    paper) with it
    let mut baseline = Engine::new(
        MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
        EngineConfig::default(),
    );
    let base = baseline.run_warmed(&trace, 0.4);

    // 3. swap the 4 MB SRAM L2 for a 32 MB stacked DRAM cache (Fig. 7c)
    let mut stacked = Engine::new(
        MemoryHierarchy::new(HierarchyConfig::stacked_dram_32mb()).expect("valid preset"),
        EngineConfig::default(),
    );
    let dram = stacked.run_warmed(&trace, 0.4);

    println!();
    println!("                      4 MB SRAM    32 MB stacked DRAM");
    println!(
        "cycles/mem access   {:>10.3}    {:>10.3}",
        base.cpma, dram.cpma
    );
    println!(
        "off-die bandwidth   {:>8.2} GB/s {:>8.2} GB/s",
        base.offdie_gb_per_sec, dram.offdie_gb_per_sec
    );
    println!(
        "bus power           {:>8.2} W    {:>8.2} W",
        bus_power_w(base.offdie_gb_per_sec),
        bus_power_w(dram.offdie_gb_per_sec)
    );
    println!();
    println!(
        "stacking the DRAM cache cuts CPMA by {:.0}% and keeps the working set on die.",
        100.0 * (1.0 - dram.cpma / base.cpma)
    );
}
