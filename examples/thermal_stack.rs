//! Thermal exploration: build the Fig. 1 two-die stack for a CPU + DRAM
//! cache, solve it, and print per-layer temperatures plus the die's heat
//! map — the §2.3 methodology end to end.
//!
//! ```sh
//! cargo run --release --example thermal_stack
//! ```

use stacksim::floorplan::core2::core2_duo_92w;
use stacksim::floorplan::uniform_die;
use stacksim::thermal::{solve, Boundary, LayerStack, SolverConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = core2_duo_92w();
    let dram = uniform_die("dram32", cpu.width(), cpu.height(), 3.1);
    let cfg = SolverConfig::default();
    let ny = cfg.nx * 17 / 20;

    // face-to-face stack of Fig. 1: CPU die next to the heat sink, thinned
    // DRAM die next to the C4 bumps
    let stack = LayerStack::two_die(
        cpu.width(),
        cpu.height(),
        cpu.power_grid(cfg.nx, ny),
        dram.power_grid(cfg.nx, ny),
        true,
    );
    println!(
        "stack ({} layers, {:.1} W total):",
        stack.layers().len(),
        stack.total_power()
    );

    let field = solve(&stack, Boundary::desktop(), cfg)?;
    for (i, layer) in stack.layers().iter().enumerate() {
        println!(
            "  {:>12}: {:>7.1} um  k={:>5.0} W/mK   T = {:.2}..{:.2} C{}",
            layer.name(),
            layer.thickness() * 1e6,
            layer.conductivity(),
            field.layer_min(i),
            field.layer_peak(i),
            if layer.power().is_some() {
                "   <- power"
            } else {
                ""
            },
        );
    }

    println!();
    println!("CPU die heat map (peak {:.2} C):", field.peak());
    let active = field
        .layer_names()
        .iter()
        .position(|n| n == "active 1")
        .expect("active layer");
    println!("{}", field.ascii_map(active));

    // what if the bond layer were much worse? (the Fig. 3 question)
    let degraded = stack
        .with_layer_conductivity("bond", 3.0)
        .expect("bond layer exists");
    let worse = solve(&degraded, Boundary::desktop(), cfg)?;
    println!(
        "bond layer at 3 W/mK instead of 60: peak {:.2} C ({:+.2} C)",
        worse.peak(),
        worse.peak() - field.peak()
    );
    Ok(())
}
