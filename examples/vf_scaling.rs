//! Voltage/frequency design-space walk: sweep the 3D floorplan's operating
//! point across the Table 5 range and print the resulting power /
//! performance / temperature frontier, with temperatures from the thermal
//! solver.
//!
//! ```sh
//! cargo run --release --example vf_scaling
//! ```

use stacksim::core::logic_logic::folded_p4;
use stacksim::floorplan::p4::pentium4_147w;
use stacksim::power::scaling::{OperatingPoint, ScalingModel};
use stacksim::thermal::{solve, Boundary, LayerStack, SolverConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ScalingModel::fig11_3d();
    let folded = folded_p4().expect("the P4 floorplan folds");
    let planar = pentium4_147w();
    let cfg = SolverConfig::builder().nx(24).ny(20).build();
    let d0 = &folded.dies()[0];
    let d1 = &folded.dies()[1];
    let bc = Boundary::performance().scaled_to_area(planar.area(), d0.area());
    let nominal_power = folded.total_power();

    // the planar reference temperature the "Same Temp" row targets
    let planar_field = solve(
        &LayerStack::planar(
            planar.width(),
            planar.height(),
            planar.power_grid(cfg.nx, cfg.ny),
        ),
        Boundary::performance(),
        cfg,
    )?;
    println!(
        "planar reference: 147.0 W, {:.1} C peak",
        planar_field.peak()
    );
    println!();
    println!(
        "{:>5} {:>7} {:>8} {:>8} {:>8}",
        "Vcc", "Pwr W", "Pwr %", "Perf %", "Temp C"
    );

    for pct in (70..=118).step_by(4) {
        let s = pct as f64 / 100.0;
        let point = if s > 1.0 {
            // above nominal voltage headroom is exhausted: frequency-only
            OperatingPoint { vcc: 1.0, freq: s }
        } else {
            OperatingPoint::scaled_together(s)
        };
        let power = model.power(point);
        let field = {
            let scale = power / nominal_power;
            let stack = LayerStack::two_die(
                d0.width(),
                d0.height(),
                d0.power_grid(cfg.nx, cfg.ny).scaled(scale),
                d1.power_grid(cfg.nx, cfg.ny).scaled(scale),
                false,
            );
            solve(&stack, bc, cfg)?
        };
        let marker = if (field.peak() - planar_field.peak()).abs() < 1.5 {
            "  <- thermally neutral"
        } else {
            ""
        };
        println!(
            "{:>5.2} {:>7.1} {:>7.0}% {:>7.0}% {:>8.1}{marker}",
            point.vcc,
            power,
            100.0 * power / 147.0,
            model.perf(point),
            field.peak(),
        );
    }
    Ok(())
}
