//! The experiment-harness CLI: list, run and cache every table and figure
//! of the paper.
//!
//! ```text
//! stacksim list
//! stacksim run --all [--jobs N] [--serial] [--no-cache] [--cache-dir D]
//!              [--test-scale] [--report FILE] [--show]
//! stacksim run fig5 table4 ...
//! stacksim check --all [--format json] [--test-scale]
//! stacksim check fig8 table4 ...
//! stacksim bench [--quick] [--threads N] [--out-dir D]
//! stacksim clean [--cache-dir D]
//! ```
//!
//! `run` executes the selection (plus transitive dependencies) in
//! parallel, memoizes artifacts under the cache directory, and prints a
//! per-experiment telemetry summary: wall time, cache hits, CG solver
//! iterations, simulated trace lengths. A second `run` with the same
//! configuration completes from cache — the telemetry shows zero solver
//! iterations and zero trace records.

use std::path::PathBuf;
use std::process::ExitCode;

use stacksim::core::harness::{
    check, default_cache_dir, render, MemoCache, Registry, RunOptions, Runner,
};
use stacksim::core::{fmt_f, TextTable};
use stacksim::workloads::WorkloadParams;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stacksim <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                      list registered experiments and dependencies\n\
         \x20 run [NAMES | --all]       run experiments (deps included automatically)\n\
         \x20 check [NAMES | --all]     statically validate experiment models\n\
         \x20 bench                     time solver + memory suites, write BENCH_*.json\n\
         \x20 clean                     delete the memo cache\n\
         \n\
         run options:\n\
         \x20 --all              run every registered experiment\n\
         \x20 --jobs N           worker threads (default: all CPUs)\n\
         \x20 --serial           one worker thread (same results, bit-identical)\n\
         \x20 --solver-threads N CG solver threads per experiment (default: 1;\n\
         \x20                    results are bit-identical for any value)\n\
         \x20 --no-cache         neither read nor write the memo cache\n\
         \x20 --cache-dir D      cache directory (default: target/stacksim-cache)\n\
         \x20 --test-scale       small traces for a fast smoke run\n\
         \x20 --report FILE      write the JSON run report to FILE\n\
         \x20 --show             print each artifact's rendered table\n\
         \n\
         check options:\n\
         \x20 --all            check every registered experiment + the digest audit\n\
         \x20 --format FMT     output format: pretty (default) or json\n\
         \x20 --test-scale     validate the test-scale parameter set\n\
         \n\
         bench options:\n\
         \x20 --quick          one timed sample per benchmark (CI smoke)\n\
         \x20 --threads N      solver threads for the fast thermal leg (default: 4)\n\
         \x20 --out-dir D      where BENCH_*.json land (default: .)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "list" => list(),
        "run" => run(&args[1..]),
        "check" => check(&args[1..]),
        "bench" => bench(&args[1..]),
        "clean" => clean(&args[1..]),
        _ => usage(),
    }
}

fn list() -> ExitCode {
    let registry = Registry::standard();
    let mut t = TextTable::new(["experiment", "depends on"]);
    for exp in registry.experiments() {
        let deps = exp.deps();
        t.row([
            exp.name().to_string(),
            if deps.len() > 4 {
                format!("{} experiments", deps.len())
            } else {
                deps.join(", ")
            },
        ]);
    }
    println!("{}", t.render());
    ExitCode::SUCCESS
}

struct RunArgs {
    names: Vec<String>,
    all: bool,
    jobs: usize,
    solver_threads: usize,
    no_cache: bool,
    cache_dir: PathBuf,
    test_scale: bool,
    report: Option<PathBuf>,
    show: bool,
}

fn parse_run_args(args: &[String]) -> Option<RunArgs> {
    let mut out = RunArgs {
        names: Vec::new(),
        all: false,
        jobs: 0,
        solver_threads: 1,
        no_cache: false,
        cache_dir: default_cache_dir(),
        test_scale: false,
        report: None,
        show: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => out.all = true,
            "--serial" => out.jobs = 1,
            "--no-cache" => out.no_cache = true,
            "--test-scale" => out.test_scale = true,
            "--show" => out.show = true,
            "--jobs" => out.jobs = it.next()?.parse().ok()?,
            "--solver-threads" => out.solver_threads = it.next()?.parse().ok()?,
            "--cache-dir" => out.cache_dir = PathBuf::from(it.next()?),
            "--report" => out.report = Some(PathBuf::from(it.next()?)),
            name if !name.starts_with('-') => out.names.push(name.to_string()),
            _ => return None,
        }
    }
    if out.all == out.names.is_empty() {
        Some(out)
    } else {
        // both or neither of --all / explicit names
        None
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some(run_args) = parse_run_args(args) else {
        return usage();
    };
    let mut params = if run_args.test_scale {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    params.solver_threads = run_args.solver_threads;
    if let Err(e) = params.validate() {
        eprintln!("stacksim: {e}");
        return ExitCode::FAILURE;
    }
    let cache = if run_args.no_cache {
        MemoCache::disabled()
    } else {
        MemoCache::at(&run_args.cache_dir)
    };
    let runner = Runner::new(
        Registry::standard(),
        RunOptions {
            params,
            jobs: run_args.jobs,
            cache,
            preflight: true,
        },
    );
    let outcome = if run_args.all {
        runner.run_all()
    } else {
        runner.run(&run_args.names)
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut t = TextTable::new(["experiment", "status", "wall s", "CG iters", "trace refs"]);
    for entry in &outcome.report.entries {
        t.row([
            entry.name.clone(),
            if entry.error.is_some() {
                "FAILED".to_string()
            } else if entry.cached {
                "cached".to_string()
            } else {
                "ran".to_string()
            },
            fmt_f(entry.wall_s, 3),
            entry.telemetry.solver.iterations.to_string(),
            entry.telemetry.trace_records().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} experiments, {} workers, {:.3} s wall, {} CG iterations, {} trace refs",
        outcome.report.entries.len(),
        outcome.report.jobs,
        outcome.report.wall_s,
        outcome.report.total_cg_iterations(),
        outcome.report.total_trace_records(),
    );

    if run_args.show {
        // deterministic order: as reported
        for entry in &outcome.report.entries {
            if let Some(artifact) = outcome.artifacts.get(&entry.name) {
                println!("\n== {} ==", entry.name);
                println!("{}", render::render(artifact));
            }
        }
    }

    if let Some(path) = &run_args.report {
        if let Err(e) = outcome.report.write(path) {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    }

    let mut failed = false;
    for (name, error) in &outcome.errors {
        eprintln!("stacksim: {name} failed: {error}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `stacksim check`: run the static lint passes over experiment models
/// (plus the digest-coverage audit with `--all`) without simulating
/// anything. Exit code 1 if any error-severity diagnostic fires.
fn check(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut json = false;
    let mut test_scale = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--test-scale" => test_scale = true,
            "--format" => match it.next().map(String::as_str) {
                Some("pretty") => json = false,
                Some("json") => json = true,
                _ => return usage(),
            },
            name if !name.starts_with('-') => names.push(name.to_string()),
            _ => return usage(),
        }
    }
    // valid: either --all with no names, or names with no --all
    if all != names.is_empty() {
        return usage();
    }

    let params = if test_scale {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let registry = Registry::standard();
    let report = if all {
        check::check_registry(&registry, &params)
    } else {
        let mut combined = stacksim::lint::Report::new();
        for name in &names {
            match check::check_experiment(&registry, name, &params) {
                Ok(r) => combined.merge_under(name, r),
                Err(e) => {
                    eprintln!("stacksim: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        combined
    };

    if json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_pretty());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `stacksim bench`: time the thermal-solver fast path against the
/// pre-optimization baseline plus memory-pipeline throughput, writing
/// `BENCH_thermal.json` and `BENCH_mem.json` (re-parsed after writing, so
/// a malformed artefact fails the command).
fn bench(args: &[String]) -> ExitCode {
    let mut opts = stacksim::bench::perf::BenchOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => return usage(),
            },
            "--out-dir" => match it.next() {
                Some(d) => opts.out_dir = PathBuf::from(d),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match stacksim::bench::perf::run(&opts) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stacksim: bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn clean(args: &[String]) -> ExitCode {
    let mut cache_dir = default_cache_dir();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match MemoCache::at(&cache_dir).clean() {
        Ok(n) => {
            println!("removed {n} cache entries from {}", cache_dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stacksim: {e}");
            ExitCode::FAILURE
        }
    }
}
