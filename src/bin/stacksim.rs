//! The experiment-harness CLI: list, run and cache every table and figure
//! of the paper.
//!
//! ```text
//! stacksim list
//! stacksim run --all [--jobs N] [--serial] [--no-cache] [--cache-dir D]
//!              [--test-scale] [--report FILE] [--show]
//!              [--metrics-out FILE] [--events FILE]
//!              [--fault-plan FILE] [--keep-going] [--failures FILE]
//!              [--retries N] [--deadline S]
//! stacksim run fig5 table4 ...
//! stacksim explore [--mode grid|random|evolve] [--budget N] [--seed N]
//!                  [--spec FILE] [--out FILE] [--report] [--jobs N]
//!                  [--test-scale] [--no-cache] [--cache-dir D]
//!                  [--cache-max-bytes B] [--cache-shards N]
//!                  [--metrics-out FILE] [--events FILE]
//! stacksim check --all [--format json] [--test-scale]
//! stacksim check fig8 table4 ...
//! stacksim bench [--quick] [--threads N] [--out-dir D]
//!                [--metrics-out FILE] [--events FILE]
//! stacksim stats [FILE] [--events FILE] [--failures FILE] [--format json]
//! stacksim clean [--cache-dir D]
//! ```
//!
//! `run` executes the selection (plus transitive dependencies) in
//! parallel, memoizes artifacts under the cache directory, and prints a
//! per-experiment telemetry summary: wall time, cache hits, CG solver
//! iterations, simulated trace lengths. A second `run` with the same
//! configuration completes from cache — the telemetry shows zero solver
//! iterations and zero trace records.
//!
//! `--metrics-out` / `--events` turn on the observability layer
//! (DESIGN.md §10): the run additionally writes a `stacksim-obs/1`
//! metrics snapshot and/or a JSONL span log, and `stacksim stats`
//! renders the most recent snapshot (also kept at
//! `target/stacksim-obs/last.json`). Simulation artifacts are
//! bit-identical with observability on or off.
//!
//! `--fault-plan` arms a deterministic `stacksim-faults/1` injection
//! plan for the duration of the run (DESIGN.md §11); `--keep-going`
//! completes every experiment the failures don't transitively poison and
//! writes a machine-readable `stacksim-failures/1` report, which
//! `stacksim stats --failures` validates. Resilience knobs: `--retries`
//! caps transient retries per experiment, `--deadline` bounds each
//! experiment's recovery time in seconds.

use std::path::PathBuf;
use std::process::ExitCode;

use stacksim::core::harness::{
    check, default_cache_dir, obs_report, render, resilience, ExperimentRequest, FailureReport,
    MemoCache, Registry, RunOutcome, RunReport, Sim,
};
use stacksim::core::{fmt_f, TextTable};
use stacksim::workloads::WorkloadParams;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stacksim <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                      list registered experiments and dependencies\n\
         \x20 run [NAMES | --all]       run experiments (deps included automatically)\n\
         \x20 explore                   Pareto design-space search over the session API\n\
         \x20 serve                     long-running HTTP/JSON experiment service\n\
         \x20 check [NAMES | --all]     statically validate experiment models\n\
         \x20 bench                     time solver + memory suites, write BENCH_*.json\n\
         \x20 stats [FILE]              validate + render an observability snapshot\n\
         \x20 clean                     delete the memo cache\n\
         \n\
         run options:\n\
         \x20 --all              run every registered experiment\n\
         \x20 --jobs N           worker threads (default: all CPUs)\n\
         \x20 --serial           one worker thread (same results, bit-identical)\n\
         \x20 --solver-threads N CG solver threads per experiment (default: 1;\n\
         \x20                    results are bit-identical for any value)\n\
         \x20 --no-cache         neither read nor write the memo cache\n\
         \x20 --cache-dir D      cache directory (default: target/stacksim-cache)\n\
         \x20 --test-scale       small traces for a fast smoke run\n\
         \x20 --report FILE      write the JSON run report to FILE\n\
         \x20 --show             print each artifact's rendered table\n\
         \x20 --metrics-out FILE write a stacksim-obs/1 metrics snapshot to FILE\n\
         \x20 --events FILE      append span/point events to FILE (JSONL)\n\
         \x20 --fault-plan FILE  arm a stacksim-faults/1 injection plan for this run\n\
         \x20 --keep-going       complete unpoisoned experiments, write the failure\n\
         \x20                    report, exit non-zero iff anything failed\n\
         \x20 --failures FILE    where --keep-going writes the stacksim-failures/1\n\
         \x20                    report (default: target/stacksim-failures.json)\n\
         \x20 --retries N        transient-failure retries per experiment (default: 2)\n\
         \x20 --deadline S       per-experiment recovery deadline in seconds\n\
         \n\
         explore options:\n\
         \x20 --mode M           search mode: grid (default), random or evolve\n\
         \x20 --budget N         max design points to evaluate (default: the whole space)\n\
         \x20 --seed N           search seed; same seed + space = bit-identical frontier\n\
         \x20 --spec FILE        JSON space spec (default: the built-in 576-point space)\n\
         \x20 --out FILE         write the stacksim-explore/1 artifact to FILE\n\
         \x20 --report           print the rendered frontier + sensitivity tables\n\
         \x20 --jobs / --test-scale / --no-cache / --cache-dir / --cache-max-bytes /\n\
         \x20 --cache-shards / --metrics-out / --events  as for run and serve\n\
         \n\
         serve options:\n\
         \x20 --addr A           listen address (default: 127.0.0.1:7878; port 0 = any)\n\
         \x20 --pool N           connection worker threads (default: 4)\n\
         \x20 --jobs N           worker threads per experiment batch (default: all CPUs)\n\
         \x20 --no-cache         neither read nor write the memo cache\n\
         \x20 --cache-dir D      cache directory (default: target/stacksim-cache)\n\
         \x20 --cache-max-bytes B  bound the cache; oldest-LRU entries evicted\n\
         \x20 --cache-shards N   spread cache entries over N subdirectories\n\
         \x20 --test-scale       small traces (smoke/CI serving)\n\
         \x20 --fault-plan FILE  plan requests may opt into with \"faults\": true;\n\
         \x20                    serve.*/session.* rules arm ambiently for the\n\
         \x20                    daemon's lifetime (network chaos)\n\
         \x20 --max-pending N    shed submissions past N queued+running (503 +\n\
         \x20                    Retry-After; default: 0 = unbounded)\n\
         \x20 --max-conns N      reject connections past N concurrent (429;\n\
         \x20                    default: 0 = unbounded)\n\
         \x20 --io-timeout S     per-socket read/write timeout and whole-request\n\
         \x20                    read deadline, seconds (default: 10)\n\
         \x20 --journal FILE     append-only crash-recovery journal (default:\n\
         \x20                    <cache-dir>/journal/requests.jsonl when the\n\
         \x20                    cache is enabled)\n\
         \x20 --no-journal       disable the journal\n\
         \n\
         check options:\n\
         \x20 --all            check every registered experiment + the digest audit\n\
         \x20 --format FMT     output format: pretty (default) or json\n\
         \x20 --test-scale     validate the test-scale parameter set\n\
         \n\
         bench options:\n\
         \x20 --quick          one timed sample per benchmark (CI smoke)\n\
         \x20 --threads N      solver threads for the fast thermal leg (default: 4)\n\
         \x20 --out-dir D      where BENCH_*.json land (default: .)\n\
         \x20 --metrics-out FILE / --events FILE  as for run\n\
         \n\
         stats options:\n\
         \x20 FILE             snapshot to read (default: target/stacksim-obs/last.json)\n\
         \x20 --events FILE    also validate a JSONL event log\n\
         \x20 --failures FILE  also validate a stacksim-failures/1 report\n\
         \x20 --format FMT     output format: pretty (default) or json"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "list" => list(),
        "run" => run(&args[1..]),
        "explore" => explore(&args[1..]),
        "serve" => serve(&args[1..]),
        "check" => check(&args[1..]),
        "bench" => bench(&args[1..]),
        "stats" => stats(&args[1..]),
        "clean" => clean(&args[1..]),
        _ => usage(),
    }
}

/// Observability session bracketing a `run` or `bench` invocation:
/// enable + install the event sink up front, then flush, snapshot and
/// disable on drop (so every exit path of the command reports).
struct ObsSession {
    metrics_out: Option<PathBuf>,
}

impl ObsSession {
    /// Start observability if either output flag was given.
    fn start(
        metrics_out: Option<&PathBuf>,
        events: Option<&PathBuf>,
    ) -> Result<Option<Self>, String> {
        if metrics_out.is_none() && events.is_none() {
            return Ok(None);
        }
        stacksim::obs::reset();
        stacksim::obs::enable();
        if let Some(path) = events {
            let sink = stacksim::obs::JsonlSink::create(path)
                .map_err(|e| format!("cannot create event log {}: {e}", path.display()))?;
            stacksim::obs::set_sink(Some(std::sync::Arc::new(sink)));
        }
        Ok(Some(ObsSession {
            metrics_out: metrics_out.cloned(),
        }))
    }

    /// Flush the event sink, write snapshots, disable observability.
    fn finish(self) -> Result<(), String> {
        stacksim::obs::set_sink(None);
        let mut targets = vec![obs_report::default_snapshot_path()];
        if let Some(path) = &self.metrics_out {
            targets.push(path.clone());
        }
        let result = targets
            .iter()
            .try_for_each(|path| obs_report::write_snapshot(path).map_err(|e| e.to_string()));
        stacksim::obs::disable();
        result
    }
}

/// Fault-plane session bracketing a `run` invocation: arm the plan up
/// front, disarm on drop so every exit path (including early errors)
/// leaves the process-global plane clean.
struct FaultSession;

impl FaultSession {
    /// Arms the plan at `path`, if one was given.
    fn start(path: Option<&PathBuf>) -> Result<Option<Self>, String> {
        let Some(path) = path else {
            return Ok(None);
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fault plan {}: {e}", path.display()))?;
        let plan = resilience::parse_fault_plan(&text)
            .map_err(|e| format!("invalid fault plan {}: {e}", path.display()))?;
        stacksim::faults::arm(plan);
        Ok(Some(FaultSession))
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        stacksim::faults::disarm();
    }
}

fn list() -> ExitCode {
    let registry = Registry::standard();
    let mut t = TextTable::new(["experiment", "depends on"]);
    for exp in registry.experiments() {
        let deps = exp.deps();
        t.row([
            exp.name().to_string(),
            if deps.len() > 4 {
                format!("{} experiments", deps.len())
            } else {
                deps.join(", ")
            },
        ]);
    }
    println!("{}", t.render());
    ExitCode::SUCCESS
}

struct RunArgs {
    names: Vec<String>,
    all: bool,
    jobs: usize,
    solver_threads: usize,
    no_cache: bool,
    cache_dir: PathBuf,
    test_scale: bool,
    report: Option<PathBuf>,
    show: bool,
    metrics_out: Option<PathBuf>,
    events: Option<PathBuf>,
    fault_plan: Option<PathBuf>,
    keep_going: bool,
    failures: PathBuf,
    retries: Option<usize>,
    deadline_s: Option<f64>,
}

fn parse_run_args(args: &[String]) -> Option<RunArgs> {
    let mut out = RunArgs {
        names: Vec::new(),
        all: false,
        jobs: 0,
        solver_threads: 1,
        no_cache: false,
        cache_dir: default_cache_dir(),
        test_scale: false,
        report: None,
        show: false,
        metrics_out: None,
        events: None,
        fault_plan: None,
        keep_going: false,
        failures: PathBuf::from("target").join("stacksim-failures.json"),
        retries: None,
        deadline_s: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => out.all = true,
            "--serial" => out.jobs = 1,
            "--no-cache" => out.no_cache = true,
            "--test-scale" => out.test_scale = true,
            "--show" => out.show = true,
            "--keep-going" => out.keep_going = true,
            "--jobs" => out.jobs = it.next()?.parse().ok()?,
            "--solver-threads" => out.solver_threads = it.next()?.parse().ok()?,
            "--cache-dir" => out.cache_dir = PathBuf::from(it.next()?),
            "--report" => out.report = Some(PathBuf::from(it.next()?)),
            "--metrics-out" => out.metrics_out = Some(PathBuf::from(it.next()?)),
            "--events" => out.events = Some(PathBuf::from(it.next()?)),
            "--fault-plan" => out.fault_plan = Some(PathBuf::from(it.next()?)),
            "--failures" => out.failures = PathBuf::from(it.next()?),
            "--retries" => out.retries = Some(it.next()?.parse().ok()?),
            "--deadline" => match it.next()?.parse::<f64>().ok() {
                Some(s) if s.is_finite() && s > 0.0 => out.deadline_s = Some(s),
                _ => return None,
            },
            name if !name.starts_with('-') => out.names.push(name.to_string()),
            _ => return None,
        }
    }
    if out.all == out.names.is_empty() {
        Some(out)
    } else {
        // both or neither of --all / explicit names
        None
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some(run_args) = parse_run_args(args) else {
        return usage();
    };
    let mut params = if run_args.test_scale {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    params.solver_threads = run_args.solver_threads;
    if let Err(e) = params.validate() {
        eprintln!("stacksim: {e}");
        return ExitCode::FAILURE;
    }
    let cache = if run_args.no_cache {
        MemoCache::disabled()
    } else {
        MemoCache::at(&run_args.cache_dir)
    };
    let mut resilience = resilience::Resilience::default();
    if let Some(retries) = run_args.retries {
        resilience.retries = retries;
    }
    resilience.deadline_s = run_args.deadline_s;
    // `run` is a thin in-process client of the same `Sim` session API the
    // `serve` daemon speaks: submit everything while paused, resume so
    // the whole selection lands in one batched runner invocation, then
    // collect the classic batch-level outcome for rendering.
    let sim = Sim::builder()
        .params(params)
        .jobs(run_args.jobs)
        .cache(cache)
        .preflight(true)
        .resilience(resilience)
        .start_paused(true)
        .build();
    let names: Vec<String> = if run_args.all {
        sim.registry()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect()
    } else {
        run_args.names.clone()
    };
    let faults = match FaultSession::start(run_args.fault_plan.as_ref()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obs = match ObsSession::start(run_args.metrics_out.as_ref(), run_args.events.as_ref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut handles = Vec::with_capacity(names.len());
    let mut submit_error = None;
    for name in &names {
        match sim.submit(&ExperimentRequest::new(name)) {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                submit_error = Some(e);
                break;
            }
        }
    }
    let outcome = if let Some(e) = submit_error {
        Err(e)
    } else {
        sim.resume();
        for handle in &handles {
            let _ = handle.wait();
        }
        sim.shutdown();
        Ok(merge_outcomes(sim.drain_outcomes()))
    };
    if let Some(faults) = faults {
        println!(
            "fault plan {}: {} faults injected",
            run_args
                .fault_plan
                .as_deref()
                .unwrap_or_else(|| std::path::Path::new("?"))
                .display(),
            stacksim::faults::injected_total()
        );
        drop(faults);
    }
    if let Some(obs) = obs {
        if let Err(e) = obs.finish() {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
        if let Some(path) = &run_args.metrics_out {
            println!("metrics snapshot written to {}", path.display());
        }
        if let Some(path) = &run_args.events {
            println!("event log written to {}", path.display());
        }
    }
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut t = TextTable::new(["experiment", "status", "wall s", "CG iters", "trace refs"]);
    for entry in &outcome.report.entries {
        t.row([
            entry.name.clone(),
            if entry.error.is_some() {
                "FAILED".to_string()
            } else if entry.cached {
                "cached".to_string()
            } else {
                match &entry.fallback {
                    Some(rung) => format!("ran ({rung})"),
                    None => "ran".to_string(),
                }
            },
            fmt_f(entry.wall_s, 3),
            entry.telemetry.solver.iterations.to_string(),
            entry.telemetry.trace_records().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} experiments, {} workers, {:.3} s wall, {} CG iterations, {} trace refs",
        outcome.report.entries.len(),
        outcome.report.jobs,
        outcome.report.wall_s,
        outcome.report.total_cg_iterations(),
        outcome.report.total_trace_records(),
    );

    if run_args.show {
        // deterministic order: as reported
        for entry in &outcome.report.entries {
            if let Some(artifact) = outcome.artifacts.get(&entry.name) {
                println!("\n== {} ==", entry.name);
                println!("{}", render::render(artifact));
            }
        }
    }

    if let Some(path) = &run_args.report {
        if let Err(e) = outcome.report.write(path) {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    }

    if run_args.keep_going {
        let failures = FailureReport::from_outcome(&outcome);
        if let Err(e) = failures.write(&run_args.failures) {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "failure report written to {} ({} failures)",
            run_args.failures.display(),
            failures.failures.len()
        );
        for f in &failures.failures {
            eprintln!(
                "stacksim: {} failed [{}] after {} attempts: {}",
                f.name, f.kind, f.attempts, f.error
            );
        }
        return if failures.failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut failed = false;
    for (name, error) in &outcome.errors {
        eprintln!("stacksim: {name} failed: {error}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Folds the session's batch-level outcomes into one — for a `run`
/// invocation everything lands in a single batch, so this is the exact
/// outcome the pre-session `Runner` path produced.
fn merge_outcomes(outcomes: Vec<RunOutcome>) -> RunOutcome {
    let mut it = outcomes.into_iter();
    let Some(mut merged) = it.next() else {
        return RunOutcome {
            report: RunReport {
                jobs: 0,
                wall_s: 0.0,
                entries: Vec::new(),
            },
            artifacts: std::collections::HashMap::new(),
            errors: Vec::new(),
        };
    };
    for outcome in it {
        merged.report.wall_s += outcome.report.wall_s;
        merged.report.entries.extend(outcome.report.entries);
        merged.artifacts.extend(outcome.artifacts);
        merged.errors.extend(outcome.errors);
    }
    merged
}

/// `stacksim explore`: search a declarative design space for its Pareto
/// frontier over (performance, peak temperature, power), reusing the
/// memo cache for every overlapping sub-experiment.
fn explore(args: &[String]) -> ExitCode {
    use stacksim::explore::{run_exploration, ExploreConfig, SearchMode, SpaceSpec};

    let mut mode = SearchMode::Grid;
    let mut budget = 0usize;
    let mut seed = 0u64;
    let mut spec_file: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut report = false;
    let mut jobs = 0usize;
    let mut test_scale = false;
    let mut no_cache = false;
    let mut cache_dir = default_cache_dir();
    let mut cache_max_bytes: Option<u64> = None;
    let mut cache_shards = 16usize;
    let mut metrics_out: Option<PathBuf> = None;
    let mut events: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => report = true,
            "--test-scale" => test_scale = true,
            "--no-cache" => no_cache = true,
            "--mode" => match it.next().map(String::as_str).and_then(SearchMode::parse) {
                Some(m) => mode = m,
                None => return usage(),
            },
            "--budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--spec" => match it.next() {
                Some(p) => spec_file = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--cache-max-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => cache_max_bytes = Some(n),
                _ => return usage(),
            },
            "--cache-shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if (1..=256).contains(&n) => cache_shards = n,
                _ => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--events" => match it.next() {
                Some(p) => events = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let spec = match &spec_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("stacksim: cannot read spec {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match SpaceSpec::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("stacksim: invalid spec {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => SpaceSpec::default_space(),
    };
    let params = if test_scale {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let cache = if no_cache {
        MemoCache::disabled()
    } else {
        MemoCache::builder()
            .dir(&cache_dir)
            .max_bytes(cache_max_bytes)
            .shards(cache_shards)
            .build()
    };
    let cfg = ExploreConfig {
        spec,
        mode,
        budget,
        seed,
    };

    let obs = match ObsSession::start(metrics_out.as_ref(), events.as_ref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = run_exploration(&cfg, params, jobs, cache);
    if let Some(obs) = obs {
        if let Err(e) = obs.finish() {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    }
    let outcome = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim: explore failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "explored {} of {} design points ({} mode, seed {}): {} on the Pareto frontier",
        outcome.evaluated,
        cfg.spec.total_points(),
        cfg.mode.label(),
        cfg.seed,
        outcome.frontier_size,
    );
    println!(
        "{} sub-experiment requests, {} cache hits, {} dedup hits ({:.1}% hit rate), {} CG iterations",
        outcome.requests,
        outcome.cache_hits,
        outcome.dedup_hits,
        100.0 * outcome.hit_rate(),
        outcome.cg_iterations,
    );

    if report {
        match stacksim::explore::render_report(&outcome.artifact_json) {
            Ok(rendered) => println!("{rendered}"),
            Err(e) => {
                eprintln!("stacksim: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{}\n", outcome.artifact_json)) {
            eprintln!("stacksim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("frontier artifact written to {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Set by the SIGTERM/SIGINT handler; the serve accept loop polls it.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Routes SIGTERM and SIGINT to the shutdown flag so `stacksim serve`
/// drains instead of dying mid-experiment. Raw `signal(2)` keeps this
/// dependency-free; an async-signal-safe store is all the handler does.
#[cfg(unix)]
fn install_shutdown_signals() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_signals() {}

/// `stacksim serve`: the long-running HTTP/JSON experiment service —
/// one warm `Sim` session (registry + shared cache + resilience policy)
/// behind submit/status/artifact/metrics/healthz endpoints. SIGTERM or
/// SIGINT drains in-flight experiments before exiting.
fn serve(args: &[String]) -> ExitCode {
    let mut options = stacksim::serve::ServeOptions::default();
    let mut cache_dir = default_cache_dir();
    let mut cache_max_bytes: Option<u64> = None;
    let mut cache_shards: usize = 16;
    let mut no_cache = false;
    let mut test_scale = false;
    let mut fault_plan: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut no_journal = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-cache" => no_cache = true,
            "--test-scale" => test_scale = true,
            "--no-journal" => no_journal = true,
            "--addr" => match it.next() {
                Some(a) => options.addr = a.clone(),
                None => return usage(),
            },
            "--pool" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => options.pool = n,
                _ => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.jobs = n,
                None => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--cache-max-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => cache_max_bytes = Some(n),
                _ => return usage(),
            },
            "--cache-shards" => match it.next().and_then(|v| v.parse().ok()) {
                // the cache clamps to 1..=256 internally; reject out-of-range
                // values here so a typo'd shard count fails loudly
                Some(n) if (1..=256).contains(&n) => cache_shards = n,
                _ => return usage(),
            },
            "--fault-plan" => match it.next() {
                Some(p) => fault_plan = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--max-pending" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.max_pending = n,
                None => return usage(),
            },
            "--max-conns" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.max_conns = n,
                None => return usage(),
            },
            "--io-timeout" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => options.io_timeout = std::time::Duration::from_secs(n),
                _ => return usage(),
            },
            "--journal" => match it.next() {
                Some(p) => journal = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    options.params = if test_scale {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    options.cache = if no_cache {
        MemoCache::disabled()
    } else {
        MemoCache::builder()
            .dir(&cache_dir)
            .max_bytes(cache_max_bytes)
            .shards(cache_shards)
            .build()
    };
    // crash recovery rides the cache by default: a journaled request is
    // only cheap to replay when the artifact memoizes
    options.journal = if no_journal {
        None
    } else {
        journal.or_else(|| (!no_cache).then(|| cache_dir.join("journal").join("requests.jsonl")))
    };
    if let Some(path) = &fault_plan {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("stacksim: cannot read fault plan {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match resilience::parse_fault_plan(&text) {
            Ok(plan) => options.fault_plan = Some(plan),
            Err(e) => {
                eprintln!("stacksim: invalid fault plan {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let server = match stacksim::serve::Server::bind(options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stacksim: cannot bind serve address: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("stacksim serve listening on http://{addr}"),
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    }
    install_shutdown_signals();
    match server.run(&SHUTDOWN) {
        Ok(()) => {
            println!("stacksim serve drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stacksim: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `stacksim check`: run the static lint passes over experiment models
/// (plus the digest-coverage audit with `--all`) without simulating
/// anything. Exit code 1 if any error-severity diagnostic fires.
fn check(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut json = false;
    let mut test_scale = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--test-scale" => test_scale = true,
            "--format" => match it.next().map(String::as_str) {
                Some("pretty") => json = false,
                Some("json") => json = true,
                _ => return usage(),
            },
            name if !name.starts_with('-') => names.push(name.to_string()),
            _ => return usage(),
        }
    }
    // valid: either --all with no names, or names with no --all
    if all != names.is_empty() {
        return usage();
    }

    let params = if test_scale {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let registry = Registry::standard();
    let report = if all {
        check::check_registry(&registry, &params)
    } else {
        let mut combined = stacksim::lint::Report::new();
        for name in &names {
            match check::check_experiment(&registry, name, &params) {
                Ok(r) => combined.merge_under(name, r),
                Err(e) => {
                    eprintln!("stacksim: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        combined
    };

    if json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_pretty());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `stacksim bench`: time the thermal-solver fast path against the
/// pre-optimization baseline plus memory-pipeline throughput, writing
/// `BENCH_thermal.json` and `BENCH_mem.json` (re-parsed after writing, so
/// a malformed artefact fails the command).
fn bench(args: &[String]) -> ExitCode {
    let mut opts = stacksim::bench::perf::BenchOptions::default();
    let mut metrics_out = None;
    let mut events = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => return usage(),
            },
            "--out-dir" => match it.next() {
                Some(d) => opts.out_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--events" => match it.next() {
                Some(p) => events = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let obs = match ObsSession::start(metrics_out.as_ref(), events.as_ref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = stacksim::bench::perf::run(&opts);
    if let Some(obs) = obs {
        if let Err(e) = obs.finish() {
            eprintln!("stacksim: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stacksim: bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `stacksim stats`: validate an observability snapshot (default: the
/// one the last `run`/`bench` left at `target/stacksim-obs/last.json`)
/// and render it as tables, optionally validating a JSONL event log
/// alongside. Exit code 1 on any schema violation.
fn stats(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut events: Option<PathBuf> = None;
    let mut failures: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => match it.next() {
                Some(p) => events = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--failures" => match it.next() {
                Some(p) => failures = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("pretty") => json = false,
                Some("json") => json = true,
                _ => return usage(),
            },
            name if !name.starts_with('-') && file.is_none() => file = Some(PathBuf::from(name)),
            _ => return usage(),
        }
    }
    let path = file.unwrap_or_else(obs_report::default_snapshot_path);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("stacksim: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let summary = match obs_report::validate_snapshot(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stacksim: invalid snapshot {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if json {
        // already validated: the file itself is the machine-readable form
        println!("{}", text.trim_end());
    } else {
        match obs_report::render_snapshot(&text) {
            Ok(rendered) => {
                println!("{rendered}");
                println!(
                    "{} counters, {} gauges, {} histograms ({})",
                    summary.counters,
                    summary.gauges,
                    summary.histograms,
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("stacksim: invalid snapshot {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(events_path) = events {
        let text = match std::fs::read_to_string(&events_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("stacksim: cannot read {}: {e}", events_path.display());
                return ExitCode::FAILURE;
            }
        };
        match obs_report::validate_events(&text) {
            Ok(s) => println!(
                "event log {}: {} spans, {} point events",
                events_path.display(),
                s.spans,
                s.points
            ),
            Err(e) => {
                eprintln!("stacksim: invalid event log {}: {e}", events_path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(failures_path) = failures {
        let text = match std::fs::read_to_string(&failures_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("stacksim: cannot read {}: {e}", failures_path.display());
                return ExitCode::FAILURE;
            }
        };
        match FailureReport::validate(&text) {
            Ok(report) => {
                println!(
                    "failure report {}: {} failures",
                    failures_path.display(),
                    report.failures.len()
                );
                for f in &report.failures {
                    println!("  {} [{}] attempts={}", f.name, f.kind, f.attempts);
                }
            }
            Err(e) => {
                eprintln!(
                    "stacksim: invalid failure report {}: {e}",
                    failures_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn clean(args: &[String]) -> ExitCode {
    let mut cache_dir = default_cache_dir();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match MemoCache::at(&cache_dir).clean() {
        Ok(n) => {
            println!("removed {n} cache entries from {}", cache_dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stacksim: {e}");
            ExitCode::FAILURE
        }
    }
}
