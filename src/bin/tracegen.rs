//! `tracegen` — generate, inspect and store RMS memory traces in the
//! `STKTRC` binary format.
//!
//! ```sh
//! tracegen list
//! tracegen stats <bench> [--paper]
//! tracegen write <bench> <file> [--paper]
//! tracegen read <file>
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use stacksim::trace::{read_trace, write_trace, TraceStats};
use stacksim::workloads::{RmsBenchmark, WorkloadParams};

fn usage() -> ExitCode {
    eprintln!("usage: tracegen list");
    eprintln!("       tracegen stats <bench> [--paper]");
    eprintln!("       tracegen write <bench> <file> [--paper]");
    eprintln!("       tracegen read <file>");
    ExitCode::FAILURE
}

fn bench_by_name(name: &str) -> Option<RmsBenchmark> {
    RmsBenchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn params(args: &[String]) -> WorkloadParams {
    if args.iter().any(|a| a == "--paper") {
        WorkloadParams::paper()
    } else {
        WorkloadParams::test()
    }
}

fn print_stats(stats: &TraceStats) {
    println!("records        : {}", stats.records);
    println!("loads/stores   : {} / {}", stats.loads, stats.stores);
    println!("per-cpu        : {:?}", stats.per_cpu);
    println!(
        "footprint      : {:.2} MiB at 64 B lines",
        stats.footprint_mib()
    );
    println!(
        "dependencies   : {} records ({:.0}%), max chain {}, mean distance {:.1}",
        stats.deps.dependent_records,
        100.0 * stats.deps.dependent_records as f64 / stats.records.max(1) as f64,
        stats.deps.max_chain,
        stats.deps.mean_distance()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for b in RmsBenchmark::all() {
                println!("{:<8} {}", b.name(), b.description());
            }
            ExitCode::SUCCESS
        }
        Some("stats") if args.len() >= 2 => {
            let Some(b) = bench_by_name(&args[1]) else {
                eprintln!("unknown benchmark '{}'; try `tracegen list`", args[1]);
                return ExitCode::FAILURE;
            };
            let trace = b.generate(&params(&args));
            println!("== {} — {} ==", b.name(), b.description());
            print_stats(&TraceStats::measure(&trace));
            ExitCode::SUCCESS
        }
        Some("write") if args.len() >= 3 => {
            let Some(b) = bench_by_name(&args[1]) else {
                eprintln!("unknown benchmark '{}'; try `tracegen list`", args[1]);
                return ExitCode::FAILURE;
            };
            let trace = b.generate(&params(&args));
            let file = match File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(BufWriter::new(file), &trace) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} records to {}", trace.len(), args[2]);
            ExitCode::SUCCESS
        }
        Some("read") if args.len() >= 2 => {
            let file = match File::open(&args[1]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            match read_trace(BufReader::new(file)) {
                Ok(trace) => {
                    println!("== {} ==", args[1]);
                    print_stats(&TraceStats::measure(&trace));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("decode failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
