//! # stacksim
//!
//! A 3D die-stacking microarchitecture simulation toolkit reproducing
//! *Die Stacking (3D) Microarchitecture* (Black et al., MICRO-39, 2006).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`trace`] — dependency-annotated memory traces (§2.1 format)
//! * [`workloads`] — the twelve RMS benchmarks of Table 1 as trace
//!   generators
//! * [`mem`] — the multi-processor memory-hierarchy simulator (§3)
//! * [`ooo`] — the deeply pipelined out-of-order core model (§4)
//! * [`floorplan`] — block floorplans, power maps and 2D→3D folding
//! * [`thermal`] — the stacked-die heat-conduction solver (§2.3)
//! * [`power`] — bus power, cache power and voltage/frequency scaling
//! * [`lint`] — static model validation (the `stacksim check` passes)
//! * [`obs`] — zero-cost-when-disabled observability (metrics, spans,
//!   event log) behind `--metrics-out` / `--events` / `stacksim stats`
//! * [`faults`] — deterministic fault injection (the `--fault-plan`
//!   chaos plane; zero-cost when no plan is armed)
//! * [`core`] — study drivers reproducing every table and figure
//! * [`explore`] — Pareto design-space search (`stacksim explore`)
//! * [`serve`] — the `stacksim serve` HTTP/JSON daemon over the
//!   embeddable [`Sim`](stacksim_core::harness::Sim) session API
//! * [`bench`] — wall-clock benchmark harness (the `stacksim bench` suites)
//!
//! # Quickstart
//!
//! ```
//! use stacksim::mem::{Engine, EngineConfig, HierarchyConfig, MemoryHierarchy};
//! use stacksim::workloads::{RmsBenchmark, WorkloadParams};
//!
//! let trace = RmsBenchmark::Conj.generate(&WorkloadParams::test());
//! let mut engine = Engine::new(
//!     MemoryHierarchy::new(HierarchyConfig::core2_baseline())?,
//!     EngineConfig::default(),
//! );
//! let result = engine.run(&trace);
//! println!("CPMA = {:.2}", result.cpma);
//! # Ok::<(), stacksim::mem::ConfigError>(())
//! ```

pub use stacksim_bench as bench;
pub use stacksim_core as core;
pub use stacksim_explore as explore;
pub use stacksim_faults as faults;
pub use stacksim_floorplan as floorplan;
pub use stacksim_lint as lint;
pub use stacksim_mem as mem;
pub use stacksim_obs as obs;
pub use stacksim_ooo as ooo;
pub use stacksim_power as power;
pub use stacksim_serve as serve;
pub use stacksim_thermal as thermal;
pub use stacksim_trace as trace;
pub use stacksim_workloads as workloads;
