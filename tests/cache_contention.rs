//! Integration: two concurrent `stacksim` *processes* sharing one
//! `--cache-dir` must not corrupt entries — the pid-unique tmp-file
//! claim plus the locked eviction scan are the contract under test.

use std::path::PathBuf;
use std::process::{Child, Command};

use stacksim::core::harness::Artifact;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-contend-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_run(cache: &PathBuf, names: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_stacksim"));
    cmd.arg("run")
        .args(names)
        .arg("--test-scale")
        .arg("--serial")
        .arg("--cache-dir")
        .arg(cache)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped());
    cmd.spawn().expect("spawn stacksim")
}

/// Two processes race the same selection into one cache directory; both
/// must succeed, every surviving entry must parse, and a third run must
/// be served fully from the (uncorrupted) cache.
#[test]
fn two_processes_share_a_cache_dir_without_corruption() {
    let cache = scratch_dir("race");
    // fig5 expands to 12 benchmark points + the aggregate: plenty of
    // same-name same-digest stores landing from both processes at once
    let a = spawn_run(&cache, &["fig5", "fig3"]);
    let b = spawn_run(&cache, &["fig5", "fig3"]);
    for child in [a, b] {
        let out = child.wait_with_output().expect("wait");
        assert!(
            out.status.success(),
            "concurrent run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // every entry both writers left behind is a parseable artifact
    let mut entries = 0;
    for entry in std::fs::read_dir(&cache).expect("cache dir exists") {
        let path = entry.expect("read_dir").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !path.is_file() || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read entry");
        Artifact::decode(&text).unwrap_or_else(|e| panic!("corrupt cache entry {name}: {e}"));
        entries += 1;
    }
    assert!(entries >= 14, "fig5 closure + fig3 memoized, got {entries}");
    assert!(
        !cache.join("quarantine").exists(),
        "no entry needed quarantining"
    );

    // a third run completes entirely from the shared cache
    let report_path = std::env::temp_dir().join(format!(
        "stacksim-contend-report-{}.json",
        std::process::id()
    ));
    let report = Command::new(env!("CARGO_BIN_EXE_stacksim"))
        .args(["run", "fig5", "fig3", "--test-scale", "--serial"])
        .arg("--cache-dir")
        .arg(&cache)
        .arg("--report")
        .arg(&report_path)
        .output()
        .expect("reporting run");
    assert!(report.status.success());
    let text = std::fs::read_to_string(&report_path).expect("report written");
    assert!(
        !text.contains("\"cached\":false"),
        "warm shared cache must serve every experiment: {text}"
    );
    assert!(text.contains("\"cached\":true"));
    let _ = std::fs::remove_file(&report_path);
    let _ = std::fs::remove_dir_all(&cache);
}
