//! End-to-end coverage of `stacksim check`: the library API and the CLI
//! binary agree that the seed registry's models are valid, and the exit
//! code reflects error-severity diagnostics.

use std::process::Command;

use stacksim::core::harness::{check_experiment, check_registry, Registry};
use stacksim::workloads::WorkloadParams;

#[test]
fn seed_registry_passes_check_at_both_scales() {
    let registry = Registry::standard();
    for params in [WorkloadParams::test(), WorkloadParams::paper()] {
        let report = check_registry(&registry, &params);
        assert!(
            !report.has_errors(),
            "seed registry must validate cleanly:\n{}",
            report.render_pretty()
        );
    }
}

#[test]
fn every_experiment_checks_individually() {
    let registry = Registry::standard();
    let params = WorkloadParams::test();
    for exp in registry.experiments() {
        let report =
            check_experiment(&registry, exp.name(), &params).expect("registered names resolve");
        assert!(
            !report.has_errors(),
            "{} failed check:\n{}",
            exp.name(),
            report.render_pretty()
        );
    }
}

#[test]
fn cli_check_all_is_clean_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_stacksim"))
        .args(["check", "--all", "--test-scale"])
        .output()
        .expect("stacksim binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "check --all failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 errors"), "unexpected output: {stdout}");
}

#[test]
fn cli_check_json_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_stacksim"))
        .args(["check", "fig8", "table4", "--format", "json"])
        .output()
        .expect("stacksim binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'));
    assert!(
        stdout.contains("\"schema\":\"stacksim-diag/1\""),
        "check JSON carries the shared diag schema tag: {stdout}"
    );
    assert!(stdout.contains("\"errors\":0"));
}

#[test]
fn cli_check_rejects_unknown_names_and_bad_flags() {
    let unknown = Command::new(env!("CARGO_BIN_EXE_stacksim"))
        .args(["check", "fig99"])
        .output()
        .expect("stacksim binary runs");
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("fig99"));

    let both = Command::new(env!("CARGO_BIN_EXE_stacksim"))
        .args(["check", "--all", "fig8"])
        .output()
        .expect("stacksim binary runs");
    assert!(!both.status.success(), "--all plus names is a usage error");
}
