//! Integration: `stacksim explore`'s determinism and cache-reuse
//! contracts — bit-identical frontier artifacts at any `--jobs` and for
//! repeated seeds, and near-free overlapping re-runs through the shared
//! memo cache.

use std::path::PathBuf;

use stacksim::core::harness::MemoCache;
use stacksim::explore::{run_exploration, ExploreConfig, SearchMode, SpaceSpec};
use stacksim::workloads::WorkloadParams;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-explore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small space whose full grid is 8 points, needing only 2 memory
/// runs and 4 thermal solves.
fn tiny_spec() -> SpaceSpec {
    SpaceSpec::parse(
        r#"{"options": ["2D 4MB", "3D 32MB"],
            "benchmarks": ["conj", "gauss"],
            "boundaries": ["desktop"],
            "vf": [1.0, 1.1]}"#,
    )
    .expect("valid spec")
}

/// Same seed, same space, same budget ⇒ byte-identical frontier
/// artifacts, regardless of worker-thread count.
#[test]
fn frontier_is_bit_identical_across_jobs() {
    let cfg = ExploreConfig::grid(tiny_spec());
    let serial = run_exploration(&cfg, WorkloadParams::test(), 1, MemoCache::disabled())
        .expect("serial exploration succeeds");
    let parallel = run_exploration(&cfg, WorkloadParams::test(), 8, MemoCache::disabled())
        .expect("parallel exploration succeeds");
    assert_eq!(
        serial.artifact_json, parallel.artifact_json,
        "the artifact is independent of --jobs"
    );
    assert_eq!(serial.evaluated, 8);
    assert!(serial.frontier_size >= 1);
    assert!(
        serial
            .artifact_json
            .contains("\"schema\":\"stacksim-explore/1\""),
        "canonical schema tag present"
    );
    // 8 points decompose into 2 mem + 4 thermal sub-experiments; the
    // other 10 needs are intra-run dedup hits
    assert_eq!(serial.requests, 6);
    assert_eq!(serial.dedup_hits, 10);
    assert!(serial.cg_iterations > 0, "cold run did solver work");
}

/// Random and evolve searches are pure functions of the seed too.
#[test]
fn seeded_searches_are_deterministic() {
    let dir = scratch_dir("seeded");
    let cache = MemoCache::at(&dir);
    for mode in [SearchMode::Random, SearchMode::Evolve] {
        let cfg = ExploreConfig {
            spec: tiny_spec(),
            mode,
            budget: 5,
            seed: 42,
        };
        let a = run_exploration(&cfg, WorkloadParams::test(), 2, cache.clone())
            .expect("exploration succeeds");
        let b = run_exploration(&cfg, WorkloadParams::test(), 2, cache.clone())
            .expect("exploration succeeds");
        assert_eq!(a.artifact_json, b.artifact_json, "{} mode", mode.label());
        assert_eq!(a.evaluated, 5);
        let other_seed = ExploreConfig { seed: 43, ..cfg };
        let c = run_exploration(&other_seed, WorkloadParams::test(), 2, cache.clone())
            .expect("exploration succeeds");
        assert_ne!(
            a.artifact_json,
            c.artifact_json,
            "{} selection follows the seed",
            mode.label()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An overlapping re-run is nearly free: every sub-experiment comes
/// from the memo cache (zero CG iterations), the hit rate clears 90%,
/// and the artifact is byte-identical to the cold run's.
#[test]
fn overlapping_rerun_is_served_from_cache() {
    let dir = scratch_dir("overlap");
    let cache = MemoCache::at(&dir);
    let cfg = ExploreConfig::grid(tiny_spec());
    let cold = run_exploration(&cfg, WorkloadParams::test(), 2, cache.clone())
        .expect("cold exploration succeeds");
    assert!(cold.cg_iterations > 0, "cold run did solver work");

    let warm = run_exploration(&cfg, WorkloadParams::test(), 2, cache.clone())
        .expect("warm exploration succeeds");
    assert_eq!(
        warm.artifact_json, cold.artifact_json,
        "cache state never changes the artifact"
    );
    assert_eq!(warm.cg_iterations, 0, "everything came from cache");
    assert_eq!(warm.cache_hits, warm.requests, "every submission was a hit");
    assert!(
        warm.hit_rate() >= 0.9,
        "hit rate {} below the 90% contract",
        warm.hit_rate()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
