//! Integration: deterministic fault injection and the runner's resilience
//! layer — the solver degradation ladder, transient retry, cache
//! quarantine, per-experiment deadlines and the machine-readable failure
//! report — spanning `stacksim-faults`, `stacksim-core` and
//! `stacksim-thermal`.
//!
//! The fault plane is process-global, so every test that arms a plan
//! serializes on [`LOCK`] and disarms via the panic-safe [`ArmedPlan`]
//! guard.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use stacksim::core::harness::{
    Artifact, Ctx, Digest, Experiment, FailureReport, MemoCache, ParamSensitivity, Registry,
    Resilience, RunOptions, RunOutcome, Runner,
};
use stacksim::core::{sensitivity, Error, Headline};
use stacksim::faults::{self, Fault, FaultPlan, FaultRule};
use stacksim::thermal::{Preconditioner, SolverConfig};
use stacksim::workloads::WorkloadParams;

/// Golden fig3 artifact digest (see `tests/golden_digests.rs`): the
/// default Jacobi-preconditioned nx=20 ny=17 configuration. The ladder's
/// Jacobi rung applied to the LineZ variant below lands on exactly this
/// effective configuration, so its artifact must reproduce this digest.
const GOLDEN_FIG3: &str = "96e4ca5a7dc6bc4f";

/// Serializes tests that arm the process-global fault plane.
static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms a plan and guarantees disarm on scope exit, even under panic.
struct ArmedPlan;

impl ArmedPlan {
    fn new(plan: FaultPlan) -> Self {
        faults::arm(plan);
        ArmedPlan
    }
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        faults::disarm();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one custom experiment through the harness under a policy.
fn run_custom(exp: Arc<dyn Experiment>, cache: MemoCache, resilience: Resilience) -> RunOutcome {
    let name = exp.name().to_string();
    let mut registry = Registry::new();
    registry.add(exp);
    Runner::new(
        registry,
        RunOptions::builder()
            .serial()
            .cache(cache)
            .resilience(resilience)
            .build(),
    )
    .run(&[name])
    .expect("selection is valid")
}

/// Fig3 solved with the LineZ preconditioner — the experiment the chaos
/// plan knocks over so the ladder has somewhere to fall.
struct LineZFig3;

impl Experiment for LineZFig3 {
    fn name(&self) -> &str {
        "fig3-linez"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        Digest::new().str("fig3-linez").hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let base = SolverConfig::builder()
            .nx(20)
            .ny(17)
            .preconditioner(Preconditioner::LineZ)
            .build();
        let (data, stats) = sensitivity::fig3_with(ctx.solver_config(base))?;
        ctx.record_solver(stats);
        Ok(Artifact::Fig3(data))
    }
}

/// A trivially cheap experiment for exercising dispatch and cache faults.
struct Tiny {
    name: &'static str,
}

impl Experiment for Tiny {
    fn name(&self) -> &str {
        self.name
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        Digest::new().str(self.name).hex()
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact, Error> {
        Ok(Artifact::Headline(Headline {
            mean_cpma_reduction: 2.0,
            peak_cpma_reduction: 3.0,
            bandwidth_reduction_factor: 3.0,
            bus_power_saving_w: 0.5,
            baseline_bus_power_w: 0.6,
        }))
    }
}

#[test]
fn ladder_recovers_linez_nonconvergence_with_bit_identical_jacobi_artifact() {
    let _g = serial();
    // Every LineZ CG solve reports non-convergence; Jacobi solves are
    // untouched, so the ladder's first rung recovers the experiment.
    let _armed = ArmedPlan::new(FaultPlan {
        seed: 0,
        rules: vec![FaultRule::always(
            "thermal.cg",
            "line-z",
            Fault::NoConvergence,
        )],
    });
    let outcome = run_custom(
        Arc::new(LineZFig3),
        MemoCache::disabled(),
        Resilience::default(),
    );
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let entry = &outcome.report.entries[0];
    assert_eq!(entry.attempts, 2, "as-configured, then the Jacobi rung");
    assert_eq!(
        entry.fallback.as_deref(),
        Some("jacobi"),
        "provenance of the recovery lives in the report"
    );
    let artifact = outcome.artifacts.get("fig3-linez").expect("recovered");
    assert_eq!(
        Digest::new().str(&artifact.encode()).hex(),
        GOLDEN_FIG3,
        "the degraded run must be bit-identical to an uninjected Jacobi run"
    );
}

#[test]
fn ladder_exhaustion_surfaces_the_solve_error() {
    let _g = serial();
    // Jacobi is knocked over too: every rung fails and the ladder runs dry.
    let _armed = ArmedPlan::new(FaultPlan {
        seed: 0,
        rules: vec![FaultRule::always("thermal.cg", "", Fault::NoConvergence)],
    });
    let outcome = run_custom(
        Arc::new(LineZFig3),
        MemoCache::disabled(),
        Resilience::default(),
    );
    assert_eq!(outcome.errors.len(), 1);
    let entry = &outcome.report.entries[0];
    assert_eq!(entry.attempts, 4, "as-configured plus three rungs");
    assert_eq!(entry.error_kind.as_deref(), Some("solve"));
    assert!(entry.fallback.is_none(), "no rung succeeded");
    assert!(outcome.artifacts.is_empty());
}

#[test]
fn transient_dispatch_faults_are_retried_to_success() {
    let _g = serial();
    // One injected panic, then one injected transient I/O error: the
    // default budget of two retries absorbs both.
    let _armed = ArmedPlan::new(FaultPlan {
        seed: 0,
        rules: vec![
            FaultRule::always("harness.dispatch", "tiny", Fault::Panic).times(1),
            FaultRule {
                after: 1,
                ..FaultRule::always("harness.dispatch", "tiny", Fault::IoTransient)
            }
            .times(1),
        ],
    });
    let outcome = run_custom(
        Arc::new(Tiny { name: "tiny" }),
        MemoCache::disabled(),
        Resilience {
            backoff_ms: 1,
            ..Resilience::default()
        },
    );
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let entry = &outcome.report.entries[0];
    assert_eq!(entry.attempts, 3, "panic, transient, success");
    assert!(entry.error.is_none());
    assert!(outcome.artifacts.contains_key("tiny"));
}

#[test]
fn corrupt_cache_entries_are_quarantined_and_recomputed() {
    let _g = serial();
    let dir = scratch_dir("quarantine");
    let cache = MemoCache::at(&dir);

    // Populate the cache uninjected.
    let first = run_custom(
        Arc::new(Tiny { name: "tiny" }),
        cache.clone(),
        Resilience::default(),
    );
    assert!(!first.report.entries[0].cached);

    // The next load is corrupted in memory; the on-disk entry is moved to
    // quarantine and the experiment recomputes.
    let _armed = ArmedPlan::new(FaultPlan {
        seed: 0,
        rules: vec![FaultRule::always("harness.cache.load", "tiny", Fault::Corrupt).times(1)],
    });
    let second = run_custom(
        Arc::new(Tiny { name: "tiny" }),
        cache.clone(),
        Resilience::default(),
    );
    assert!(second.errors.is_empty(), "{:?}", second.errors);
    let entry = &second.report.entries[0];
    assert!(entry.quarantined, "the corrupt entry was set aside");
    assert!(!entry.cached, "quarantine forces a recompute");
    assert!(second.artifacts.contains_key("tiny"));
    let quarantined = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir exists")
        .count();
    assert_eq!(quarantined, 1, "the poisoned file survives for forensics");

    // The recomputed entry serves the third run from cache as usual.
    let third = run_custom(
        Arc::new(Tiny { name: "tiny" }),
        cache,
        Resilience::default(),
    );
    assert!(third.report.entries[0].cached);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_cache_entries_are_a_plain_miss() {
    let _g = serial();
    let dir = scratch_dir("truncate");
    let cache = MemoCache::at(&dir);
    run_custom(
        Arc::new(Tiny { name: "tiny" }),
        cache.clone(),
        Resilience::default(),
    );

    // A 0-byte read is the cache's own miss-and-delete path: no
    // quarantine, no error, just a recompute.
    let _armed = ArmedPlan::new(FaultPlan {
        seed: 0,
        rules: vec![FaultRule::always("harness.cache.load", "tiny", Fault::Truncate).times(1)],
    });
    let outcome = run_custom(
        Arc::new(Tiny { name: "tiny" }),
        cache,
        Resilience::default(),
    );
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let entry = &outcome.report.entries[0];
    assert!(!entry.cached);
    assert!(!entry.quarantined, "truncation is a miss, not a quarantine");
    assert_eq!(entry.attempts, 1);
    assert!(outcome.artifacts.contains_key("tiny"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failure_reports_are_byte_identical_across_runs_of_the_same_plan() {
    let _g = serial();
    let plan = FaultPlan {
        seed: 7,
        rules: vec![FaultRule::always(
            "harness.dispatch",
            "doomed",
            Fault::Panic,
        )],
    };
    let run_once = || {
        let _armed = ArmedPlan::new(plan.clone());
        let outcome = run_custom(
            Arc::new(Tiny { name: "doomed" }),
            MemoCache::disabled(),
            Resilience {
                backoff_ms: 1,
                ..Resilience::default()
            },
        );
        FailureReport::from_outcome(&outcome)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.failures.len(), 1);
    assert_eq!(a.failures[0].kind, "worker-panic");
    assert_eq!(a.failures[0].attempts, 3, "the full retry budget was spent");
    assert_eq!(
        a.encode(),
        b.encode(),
        "same plan and seed must reproduce the same failure report"
    );
    let back = FailureReport::validate(&a.encode()).expect("round-trips");
    assert_eq!(back, a);
}

#[test]
fn deadlines_bound_the_recovery_loop() {
    let _g = serial();
    // An endless transient with a huge retry budget: only the deadline
    // stops the loop, and the failure is classified as such.
    let _armed = ArmedPlan::new(FaultPlan {
        seed: 0,
        rules: vec![FaultRule::always(
            "harness.dispatch",
            "stuck",
            Fault::IoTransient,
        )],
    });
    let outcome = run_custom(
        Arc::new(Tiny { name: "stuck" }),
        MemoCache::disabled(),
        Resilience {
            retries: 10_000,
            backoff_ms: 1,
            deadline_s: Some(0.05),
            ..Resilience::default()
        },
    );
    assert_eq!(outcome.errors.len(), 1);
    let entry = &outcome.report.entries[0];
    assert_eq!(entry.error_kind.as_deref(), Some("deadline"));
    assert!(entry.attempts >= 1);
    assert!(outcome.artifacts.is_empty());
}

#[test]
fn unarmed_runs_see_no_faults() {
    let _g = serial();
    faults::disarm();
    let outcome = run_custom(
        Arc::new(Tiny { name: "tiny" }),
        MemoCache::disabled(),
        Resilience::default(),
    );
    assert!(outcome.errors.is_empty());
    let entry = &outcome.report.entries[0];
    assert_eq!(entry.attempts, 1);
    assert!(entry.fallback.is_none());
    assert_eq!(faults::injected_total(), 0);
}
