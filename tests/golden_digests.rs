//! Golden digest-stability tests for the fig3 and fig8 artifacts.
//!
//! Each test runs the real experiment, serializes the artifact through its
//! canonical JSON codec, and hashes the bytes. The hex constants below were
//! captured from a known-good run; they pin the solver's *exact* floating
//! point behaviour, so any change to summation order, stencil layout,
//! partitioning, or warm-start logic that moves a single bit shows up here.
//! Running the same experiment at a different thread count must reproduce
//! the same constant — that is the solver's determinism contract.
//!
//! If a deliberate numeric change lands (new reduction order, different
//! convergence path), re-capture the constants from the failure message.

use stacksim::core::harness::{Artifact, Digest};
use stacksim::core::{memory_logic, sensitivity};
use stacksim::thermal::SolverConfig;

/// Digest of the encoded artifact: length-prefixed FNV-1a over the
/// canonical JSON text.
fn digest(artifact: &Artifact) -> String {
    Digest::new().str(&artifact.encode()).hex()
}

/// A reduced grid keeps the debug-profile runtime reasonable while still
/// exercising the full sweep (warm starts, multi-layer sweeps, both
/// curves). nx=20 -> ny=17, 14 layers.
fn cfg(threads: usize) -> SolverConfig {
    SolverConfig::builder()
        .nx(20)
        .ny(17)
        .threads(threads)
        .build()
}

const GOLDEN_FIG3: &str = "96e4ca5a7dc6bc4f";
const GOLDEN_FIG8: &str = "bbc49dedf247dddf";

#[test]
fn fig3_artifact_digest_is_stable_across_thread_counts() {
    for threads in [1, 8] {
        let (data, _) = sensitivity::fig3_with(cfg(threads)).unwrap();
        let d = digest(&Artifact::Fig3(data));
        assert_eq!(
            d, GOLDEN_FIG3,
            "fig3 digest moved at threads={threads}: got {d}"
        );
    }
}

#[test]
fn fig8_artifact_digest_is_stable_across_thread_counts() {
    for threads in [1, 8] {
        let (points, _) = memory_logic::fig8_with(cfg(threads)).unwrap();
        let d = digest(&Artifact::Fig8(points));
        assert_eq!(
            d, GOLDEN_FIG8,
            "fig8 digest moved at threads={threads}: got {d}"
        );
    }
}

/// The observability contract (DESIGN.md §10): with metrics live and an
/// event sink installed, the solver produces bit-identical artifacts —
/// instrumentation reads the simulation, never feeds back into it.
#[test]
fn fig3_digest_is_identical_with_observability_enabled() {
    struct Capture(std::sync::Mutex<Vec<String>>);
    impl stacksim::obs::EventSink for Capture {
        fn line(&self, s: &str) {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(s.to_string());
        }
    }
    let sink = std::sync::Arc::new(Capture(std::sync::Mutex::new(Vec::new())));
    stacksim::obs::enable();
    stacksim::obs::set_sink(Some(sink.clone()));
    let (data, _) = sensitivity::fig3_with(cfg(2)).unwrap();
    stacksim::obs::set_sink(None);
    stacksim::obs::disable();

    let d = digest(&Artifact::Fig3(data));
    assert_eq!(
        d, GOLDEN_FIG3,
        "observability moved the fig3 digest: got {d}"
    );

    let lines = sink
        .0
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(
        lines.iter().any(|l| l.contains("thermal.cg.solve")),
        "no solve events captured"
    );
    // every instrument the run registered is statically declared (SL060)
    let report = stacksim::core::harness::obs_audit();
    assert!(!report.has_errors(), "{}", report.render_pretty());
}
