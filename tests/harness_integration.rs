//! Integration: the experiment harness — registry fan-out, disk
//! memoization, telemetry and parallel/serial determinism — spanning
//! `stacksim-core`, `stacksim-thermal`, `stacksim-mem` and
//! `stacksim-workloads`.

use std::path::PathBuf;

use stacksim::core::harness::{Artifact, MemoCache, Registry, RunOptions, Runner};
use stacksim::workloads::WorkloadParams;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-harness-{tag}-{}", std::process::id()));
    // a stale dir from a crashed run must not poison the test
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn runner(params: WorkloadParams, jobs: usize, cache: MemoCache) -> Runner {
    Runner::new(
        Registry::standard(),
        RunOptions::builder()
            .params(params)
            .jobs(jobs)
            .cache(cache)
            .preflight(true)
            .build(),
    )
}

#[test]
fn memoization_same_digest_is_a_cache_hit_with_zero_solver_work() {
    let dir = scratch_dir("memo");
    let params = WorkloadParams::test();

    let first = runner(params, 1, MemoCache::at(&dir))
        .run(&["fig8".into()])
        .unwrap();
    let e1 = &first.report.entries[0];
    assert!(!e1.cached, "cold cache must actually run");
    assert!(
        e1.telemetry.solver.iterations > 0,
        "fig8 performs CG solves when it runs"
    );

    let second = runner(params, 1, MemoCache::at(&dir))
        .run(&["fig8".into()])
        .unwrap();
    let e2 = &second.report.entries[0];
    assert!(e2.cached, "same digest must hit the cache");
    assert_eq!(
        e2.telemetry.solver.iterations, 0,
        "a cache hit does zero solver work"
    );
    assert_eq!(e1.digest, e2.digest);

    // the cached artifact is bit-identical to the fresh one
    let a = first.artifacts.get("fig8").unwrap();
    let b = second.artifacts.get("fig8").unwrap();
    assert_eq!(a.encode(), b.encode());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memoization_changed_config_is_a_miss_and_reruns() {
    let dir = scratch_dir("digest");
    let params = WorkloadParams::test();

    let first = runner(params, 1, MemoCache::at(&dir))
        .run(&["fig5:gauss".into()])
        .unwrap();
    assert!(!first.report.entries[0].cached);

    // a different trace seed is a different experiment point: the digest
    // must change and the cache must not serve the stale artifact
    let mut reseeded = params;
    reseeded.seed ^= 0xdead_beef;
    let second = runner(reseeded, 1, MemoCache::at(&dir))
        .run(&["fig5:gauss".into()])
        .unwrap();
    let (e1, e2) = (&first.report.entries[0], &second.report.entries[0]);
    assert_ne!(e1.digest, e2.digest, "seed is part of the digest");
    assert!(!e2.cached, "changed config must re-run");
    assert!(
        e2.telemetry.trace_records() > 0,
        "the re-run simulates the trace again"
    );

    // and the original point still hits
    let third = runner(params, 1, MemoCache::at(&dir))
        .run(&["fig5:gauss".into()])
        .unwrap();
    assert!(third.report.entries[0].cached);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_and_serial_fig5_artifacts_are_bit_identical() {
    let params = WorkloadParams::test();
    let serial = runner(params, 1, MemoCache::disabled())
        .run(&["fig5".into()])
        .unwrap();
    let parallel = runner(params, 4, MemoCache::disabled())
        .run(&["fig5".into()])
        .unwrap();
    assert!(serial.errors.is_empty() && parallel.errors.is_empty());

    // every per-benchmark point and the aggregate must match byte-for-byte
    assert_eq!(serial.artifacts.len(), parallel.artifacts.len());
    assert_eq!(serial.artifacts.len(), 13, "12 points + the aggregate");
    for (name, artifact) in &serial.artifacts {
        let other = parallel
            .artifacts
            .get(name)
            .unwrap_or_else(|| panic!("parallel run missing {name}"));
        assert_eq!(
            artifact.encode(),
            other.encode(),
            "{name} differs between serial and parallel"
        );
    }
}

#[test]
fn dependencies_run_before_dependents_and_artifacts_flow() {
    let outcome = runner(WorkloadParams::test(), 2, MemoCache::disabled())
        .run(&["headline".into()])
        .unwrap();
    assert!(outcome.errors.is_empty());
    // headline pulls in fig5 which pulls in all twelve points
    assert_eq!(outcome.artifacts.len(), 1 + 1 + 12);
    let headline = outcome.artifacts.get("headline").unwrap();
    match headline.as_ref() {
        Artifact::Headline(h) => assert!(h.bandwidth_reduction_factor > 0.0),
        other => panic!("expected headline artifact, got {}", other.kind()),
    }
}

#[test]
fn unknown_experiment_is_an_error_not_a_panic() {
    let err = runner(WorkloadParams::test(), 1, MemoCache::disabled())
        .run(&["fig99".into()])
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("fig99"), "error names the experiment: {msg}");
}
