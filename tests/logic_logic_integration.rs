//! Integration: OoO core model + floorplan fold + V/f scaling, spanning
//! `stacksim-ooo`, `stacksim-floorplan`, `stacksim-power` and
//! `stacksim-core`.

use stacksim::core::logic_logic::{folded_p4, table4};
use stacksim::ooo::{CoreConfig, Simulator, WireConfig, WirePath, WorkloadClass};
use stacksim::power::scaling::{OperatingPoint, ScalingModel};
use stacksim::power::PowerBreakdown;

#[test]
fn full_fold_beats_every_single_path_change() {
    let uops = WorkloadClass::SpecFp.generate(20_000, 9);
    let planar = Simulator::new(CoreConfig::planar()).run(&uops).cycles;
    let folded = Simulator::new(CoreConfig::folded_3d()).run(&uops).cycles;
    for path in WirePath::all() {
        let cfg = CoreConfig {
            wire: path.apply(WireConfig::planar()),
            ..CoreConfig::planar()
        };
        let single = Simulator::new(cfg).run(&uops).cycles;
        assert!(
            folded <= single && single <= planar,
            "{path}: planar {planar}, single {single}, folded {folded}"
        );
    }
}

#[test]
fn table4_gains_are_all_non_negative_and_fp_dominates() {
    let t = table4(10_000, 5).unwrap();
    for row in &t.rows {
        assert!(
            row.measured_pct > -0.5,
            "{}: {:.2}%",
            row.path,
            row.measured_pct
        );
    }
    let max = t
        .rows
        .iter()
        .max_by(|a, b| a.measured_pct.partial_cmp(&b.measured_pct).unwrap())
        .unwrap();
    assert_eq!(
        max.path,
        WirePath::FpLatency,
        "FP latency is Table 4's biggest row"
    );
    assert!(t.total_pct > t.rows.iter().map(|r| r.measured_pct).fold(0.0, f64::max));
}

#[test]
fn fold_and_power_model_agree_on_the_15_percent_saving() {
    // the floorplan fold and the power breakdown both implement the §4
    // 15% claim; they must agree
    let folded = folded_p4().expect("the P4 floorplan folds");
    let from_floorplan = 1.0 - folded.total_power() / 147.0;
    let breakdown = PowerBreakdown::p4_147w();
    let from_breakdown = 1.0 - breakdown.fold_3d().total() / breakdown.total();
    assert!(
        (from_floorplan - 0.15).abs() < 0.005,
        "floorplan: {from_floorplan}"
    );
    assert!((from_breakdown - from_floorplan).abs() < 0.02);
}

#[test]
fn scaling_roundtrips_between_power_and_performance() {
    let m = ScalingModel::fig11_3d();
    // scaling to the planar baseline's perf then reading power back gives
    // Table 5's Same Perf. row; re-scaling that power recovers the point
    let p = m.scale_to_perf(100.0);
    let w = m.power(p);
    let p2 = m.scale_to_power(w);
    assert!((p.vcc - p2.vcc).abs() < 1e-9);
    assert!((m.perf(p2) - 100.0).abs() < 1e-9);
}

#[test]
fn redirect_penalty_reduction_shows_up_on_branchy_code() {
    // internet-class code is branchy; the folded pipeline's shallower
    // redirect loop must show a measurable gain
    let uops = WorkloadClass::Internet.generate(30_000, 11);
    let planar = Simulator::new(CoreConfig::planar()).run(&uops);
    let folded = Simulator::new(CoreConfig::folded_3d()).run(&uops);
    assert!(folded.redirect_stall_cycles < planar.redirect_stall_cycles);
    assert!(folded.ipc() > planar.ipc());
}

#[test]
fn same_temperature_scaling_lands_between_same_freq_and_same_perf() {
    // with a linear thermal stand-in, the thermal-neutral point must sit
    // between nominal (hotter) and same-perf (cooler)
    let m = ScalingModel::fig11_3d();
    let r3d = 0.58; // °C per watt, the Fig. 11 3D point
    let temp = |w: f64| 40.0 + r3d * w;
    let baseline_temp = 40.0 + (98.6 - 40.0); // planar peak
    let pt = m.scale_to_temperature(baseline_temp, temp);
    assert!(pt.vcc < 1.0, "must slow down: {}", pt.vcc);
    assert!(
        pt.vcc > m.scale_to_perf(100.0).vcc,
        "but less than same-perf"
    );
    let nominal_temp = temp(m.power(OperatingPoint::nominal()));
    assert!(
        nominal_temp > baseline_temp,
        "nominal 3D runs hotter than planar"
    );
}
