//! Integration: workloads → trace → memory hierarchy → CPMA metrics,
//! spanning `stacksim-workloads`, `stacksim-trace`, `stacksim-mem` and
//! `stacksim-core`.

use stacksim::core::memory_logic::run_benchmark;
use stacksim::core::StackOption;
use stacksim::mem::{Engine, EngineConfig, MemoryHierarchy, ServiceLevel};
use stacksim::trace::{CpuId, MemOp, TraceStats};
use stacksim::workloads::{RmsBenchmark, WorkloadParams};

#[test]
fn every_benchmark_runs_on_every_stack_option() {
    let params = WorkloadParams::test();
    for benchmark in RmsBenchmark::all() {
        let row = run_benchmark(benchmark, &params).unwrap();
        for (i, option) in StackOption::all().iter().enumerate() {
            assert!(
                row.cpma[i] >= 0.4 && row.cpma[i] < 500.0,
                "{benchmark} on {option}: cpma {}",
                row.cpma[i]
            );
            assert!(
                row.bandwidth[i] >= 0.0 && row.bandwidth[i] < 17.0,
                "{benchmark} bw"
            );
        }
    }
}

#[test]
fn cpma_floor_is_half_a_cycle_for_two_threads() {
    // two threads issuing one reference per cycle each bound CPMA at 0.5;
    // the warm-up boundary lets a little issue overlap leak across the
    // measurement window, so allow a few percent of slack
    let params = WorkloadParams::test();
    let row = run_benchmark(RmsBenchmark::SAvdf, &params).unwrap();
    for c in row.cpma {
        assert!(c >= 0.45, "cpma {c} cannot beat the issue floor");
    }
}

#[test]
fn engine_results_are_deterministic_across_runs() {
    let params = WorkloadParams::test();
    let trace = RmsBenchmark::Pcg.generate(&params);
    let run = || {
        let mut e = Engine::new(
            MemoryHierarchy::new(StackOption::Dram32M.hierarchy()).expect("valid preset"),
            EngineConfig::default(),
        );
        e.run(&trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.offdie_bytes, b.offdie_bytes);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn trace_statistics_survive_the_interleave() {
    let params = WorkloadParams::test();
    let trace = RmsBenchmark::Gauss.generate(&params);
    let stats = TraceStats::measure(&trace);
    assert_eq!(stats.per_cpu.len(), 2);
    // round-robin interleave keeps the two threads within one chunk of
    // each other in record counts (kernels may emit different extras)
    let ratio = stats.per_cpu[0] as f64 / stats.per_cpu[1] as f64;
    assert!(ratio > 0.8 && ratio < 1.25, "thread balance {ratio}");
}

#[test]
fn stacked_hierarchy_serves_from_the_stacked_level() {
    // walk a working set bigger than L2 but smaller than the stacked DRAM,
    // twice: the second pass must hit the stacked level, not memory
    let mut h = MemoryHierarchy::new(StackOption::Dram32M.hierarchy()).expect("valid preset");
    let lines: u64 = 8192; // 512 KB at 64 B
    let mut t = 0;
    for pass in 0..2 {
        for i in 0..lines {
            let r = h.access(CpuId::new(0), MemOp::Load, 0x100_0000 + i * 64, t);
            t = r.done;
            if pass == 1 {
                assert_ne!(
                    r.level,
                    ServiceLevel::Memory,
                    "warm line {i} must be on die (got memory)"
                );
            }
        }
    }
    assert!(
        h.stats().stacked_hits > 0,
        "the stacked level served traffic"
    );
}

#[test]
fn capacity_sensitive_benchmarks_improve_with_the_stack_at_paper_scale() {
    // one paper-scale spot check (the full sweep lives in the fig5 binary):
    // gauss must improve dramatically from 4 MB to 32 MB
    let row = run_benchmark(RmsBenchmark::Gauss, &WorkloadParams::paper()).unwrap();
    assert!(
        row.cpma_reduction(2) > 0.3,
        "gauss @32MB reduction {:.2}",
        row.cpma_reduction(2)
    );
    // and the insensitive dSym must stay within noise
    let flat = run_benchmark(RmsBenchmark::DSym, &WorkloadParams::paper()).unwrap();
    assert!(
        flat.cpma_reduction(2).abs() < 0.15,
        "dSym @32MB reduction {:.2}",
        flat.cpma_reduction(2)
    );
}
