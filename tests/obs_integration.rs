//! End-to-end observability: run a real experiment through the harness
//! with metrics and an event log on, then validate both artifacts the
//! way `stacksim stats` does — schema-checked snapshot, balanced span
//! log, and counter values consistent with the run report.

use std::sync::Arc;

use stacksim::core::harness::json::Json;
use stacksim::core::harness::{obs_audit, obs_report, MemoCache, Registry, RunOptions, Runner};
use stacksim::workloads::WorkloadParams;

/// The enable flag, registry and sink are process-global; tests touching
/// them must not interleave.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn run_with_observability_produces_valid_artifacts() {
    let _guard = OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = std::env::temp_dir().join(format!("stacksim-obs-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.jsonl");
    let snapshot_path = dir.join("metrics.json");

    stacksim::obs::reset();
    stacksim::obs::enable();
    let sink = stacksim::obs::JsonlSink::create(&events_path).unwrap();
    stacksim::obs::set_sink(Some(Arc::new(sink)));

    let runner = Runner::new(
        Registry::standard(),
        RunOptions::builder()
            .params(WorkloadParams::test())
            .serial()
            .cache(MemoCache::at(dir.join("cache")))
            .preflight(true)
            .build(),
    );
    let outcome = runner.run(&["fig5:gauss".to_string()]).unwrap();
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

    stacksim::obs::set_sink(None);
    obs_report::write_snapshot(&snapshot_path).unwrap();
    stacksim::obs::disable();

    let text = std::fs::read_to_string(&snapshot_path).unwrap();
    let summary = obs_report::validate_snapshot(&text).unwrap();
    assert!(summary.counters > 0, "no counters in snapshot");
    assert!(summary.histograms > 0, "no histograms in snapshot");

    let doc = Json::parse(&text).unwrap();
    let counters = doc.get("counters").unwrap();
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    let records = outcome.report.total_trace_records();
    assert!(records > 0);
    // the counter sees every issued record including warmup; telemetry
    // reports only the measured window, so the counter dominates it
    assert!(counter("mem.engine.records") >= records);
    assert!(counter("mem.accesses") > 0);
    assert!(counter("mem.bus.bytes") > 0);
    assert_eq!(counter("harness.experiments"), 1);
    assert_eq!(counter("harness.cache_misses"), 1);
    assert_eq!(counter("harness.cache_hits"), 0);
    assert!(counter("harness.cache.bytes_written") > 0);

    let events = std::fs::read_to_string(&events_path).unwrap();
    let es = obs_report::validate_events(&events).unwrap();
    assert!(
        es.spans >= 2,
        "expected run + experiment spans, got {}",
        es.spans
    );

    let rendered = obs_report::render_snapshot(&text).unwrap();
    assert!(rendered.contains("mem.accesses"));
    assert!(rendered.contains("harness.experiments"));

    // the runtime half of SL060: everything registered is declared
    let report = obs_audit();
    assert!(!report.has_errors(), "{}", report.render_pretty());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A second identical run served from the memo cache reports a hit and
/// simulates nothing — the cache counters make that visible.
#[test]
fn cache_hit_shows_up_in_metrics() {
    let _guard = OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = std::env::temp_dir().join(format!("stacksim-obs-hit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let options = || {
        RunOptions::builder()
            .params(WorkloadParams::test())
            .serial()
            .cache(MemoCache::at(dir.join("cache")))
            .preflight(true)
            .build()
    };

    // seed the cache without metrics
    let runner = Runner::new(Registry::standard(), options());
    runner.run(&["fig5:svm".to_string()]).unwrap();

    stacksim::obs::reset();
    stacksim::obs::enable();
    let runner = Runner::new(Registry::standard(), options());
    let outcome = runner.run(&["fig5:svm".to_string()]).unwrap();
    let snapshot = stacksim::obs::registry().snapshot();
    stacksim::obs::disable();

    assert!(outcome.report.entries[0].cached);
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert_eq!(counter("harness.cache_hits"), 1);
    assert_eq!(counter("harness.cache_misses"), 0);
    assert_eq!(
        counter("mem.engine.records"),
        0,
        "a cache hit simulates nothing"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
