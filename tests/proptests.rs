//! Randomized property tests over the core data structures and invariants
//! (DESIGN.md §7): cache legality, DRAM bank-state machine, trace codec
//! round-trips, engine determinism, power-grid conservation and the
//! thermal maximum principle.
//!
//! Each property is exercised over a deterministic family of seeds with
//! `stacksim_rng` generating the inputs, so failures reproduce exactly.

use stacksim::floorplan::PowerGrid;
use stacksim::mem::{
    Bus, BusConfig, Cache, CacheConfig, DramArray, DramConfig, DramTiming, Engine, EngineConfig,
    HierarchyConfig, Lookup, MemoryHierarchy,
};
use stacksim::thermal::{solve, Boundary, Layer, LayerStack, SolverConfig};
use stacksim::trace::{read_trace, write_trace, CpuId, MemOp, TraceBuilder};
use stacksim_rng::StdRng;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        capacity: 2048,
        line_size: 64,
        ways: 4,
        latency: 1,
        sectors: 1,
    })
    .expect("valid test config")
}

/// A cache never holds more lines than its capacity, and a line reported
/// as a hit was accessed before without an intervening eviction of it.
#[test]
fn cache_capacity_and_hit_legality() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..400);
        let mut c = small_cache();
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for _ in 0..n {
            let a: u64 = rng.gen_range(0..1 << 16);
            let line = a & !63;
            match c.access(a, false) {
                Lookup::Hit => assert!(resident.contains(&line), "hit on absent line {line:#x}"),
                Lookup::SectorMiss => assert!(resident.contains(&line)),
                Lookup::Miss(ev) => {
                    if let Some(ev) = ev {
                        assert!(resident.remove(&ev.line_addr), "evicted non-resident line");
                    }
                    resident.insert(line);
                }
            }
            assert!(c.occupied_lines() <= 32, "4 ways x 8 sets");
            assert_eq!(c.occupied_lines(), resident.len());
        }
    }
}

/// DRAM accesses never travel back in time, bank service is exclusive and
/// page hits are only reported for genuinely open rows.
#[test]
fn dram_bank_state_machine_is_legal() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..200);
        let mut d = DramArray::new(DramConfig {
            banks: 4,
            page_size: 512,
            timing: DramTiming::table3(),
            open_rows: 2,
        })
        .expect("valid test config");
        let mut clock = 0u64;
        let mut bank_free = [0u64; 4];
        for _ in 0..n {
            let a: u64 = rng.gen_range(0..1 << 20);
            clock += rng.gen_range(0u64..50);
            let acc = d.access(a, clock);
            assert!(acc.start >= clock, "service before arrival");
            assert!(acc.done > acc.start, "zero-latency access");
            assert!(
                acc.start >= bank_free[acc.bank as usize],
                "bank double-booked"
            );
            // the bank is busy for at least the burst after service start
            bank_free[acc.bank as usize] = acc.start + 8;
        }
    }
}

/// The bus conserves bytes and never overlaps transfers.
#[test]
fn bus_transfers_never_overlap() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..100);
        let mut bus = Bus::new(BusConfig::table3());
        let mut t = 0u64;
        let mut prev_done = 0u64;
        let mut bytes = 0u64;
        for _ in 0..n {
            let s: u64 = rng.gen_range(1..512);
            t += rng.gen_range(0u64..40);
            let x = bus.transfer(s, t);
            assert!(x.start >= prev_done, "transfer overlap");
            assert!(x.start >= t);
            assert!(x.done > x.start);
            prev_done = x.done;
            bytes += s + BusConfig::table3().overhead_bytes;
        }
        assert_eq!(bus.bytes(), bytes);
    }
}

/// Under random arrival patterns (bursts, idle gaps, occasional
/// out-of-order arrival times) the bus's cycle accounting stays
/// consistent with the per-transfer timestamps: `busy_cycles` is exactly
/// the wire time summed over transfers, `queue_cycles` exactly the
/// arrival-to-start delays, and utilisation over any interval covering
/// the traffic never exceeds 1.0.
#[test]
fn bus_utilisation_bounded_and_cycle_accounting_consistent() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..200);
        let mut bus = Bus::new(BusConfig::table3());
        let mut at = 0u64;
        let mut busy = 0u64;
        let mut queue = 0u64;
        let mut last_done = 0u64;
        for _ in 0..n {
            let payload: u64 = rng.gen_range(0..4096);
            // Mix of back-to-back bursts, idle gaps, and (one time in
            // eight) a re-issued earlier arrival time: the bus must
            // tolerate non-monotone `at` because queued requesters
            // present their original arrival cycles.
            match rng.gen_range(0u32..8) {
                0 => at = at.saturating_sub(rng.gen_range(0u64..50)),
                1..=4 => {}
                _ => at += rng.gen_range(1u64..200),
            }
            let x = bus.transfer(payload, at);
            assert!(x.start >= at, "service cannot precede arrival");
            busy += x.done - x.start;
            queue += x.start - at;
            last_done = last_done.max(x.done);
        }
        assert_eq!(bus.busy_cycles(), busy, "busy != Σ(done - start)");
        assert_eq!(bus.queue_cycles(), queue, "queue != Σ(start - arrival)");
        let u = bus.utilisation(last_done);
        assert!(
            (0.0..=1.0).contains(&u),
            "utilisation {u} outside [0, 1] over {last_done} cycles"
        );
        // A longer interval only dilutes utilisation further.
        assert!(bus.utilisation(last_done * 2 + 1) <= u);
    }
}

/// Random (valid) traces round-trip through the binary codec.
#[test]
fn trace_codec_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..300);
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            let op = match rng.gen_range(0u8..3) {
                0 => MemOp::Load,
                1 => MemOp::Store,
                _ => MemOp::IFetch,
            };
            let addr: u64 = rng.gen_range(0..1 << 40);
            let ip: u64 = rng.gen_range(0..1 << 30);
            let dep = if rng.gen_bool(0.5) { b.last_id() } else { None };
            let cpu = rng.gen_range(0u8..4);
            b.record_dep(CpuId::new(cpu), op, addr, ip, dep);
        }
        let t = b.build();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }
}

/// The engine is a pure function of (trace, config): same inputs, same
/// timing — with and without dependencies honoured.
#[test]
fn engine_is_deterministic() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..300);
        let window = rng.gen_range(1usize..32);
        let mut b = TraceBuilder::new();
        for i in 0..n {
            let a: u64 = rng.gen_range(0..1 << 22);
            let dep = if i % 3 == 0 { b.last_id() } else { None };
            let op = if i % 5 == 0 {
                MemOp::Store
            } else {
                MemOp::Load
            };
            b.record_dep(CpuId::new((i % 2) as u8), op, a, 0, dep);
        }
        let t = b.build();
        let cfg = EngineConfig::builder().window(window).build();
        let run = || {
            let mut e = Engine::new(
                MemoryHierarchy::new(HierarchyConfig::stacked_dram_32mb()).expect("valid preset"),
                cfg,
            );
            e.run(&t)
        };
        let a = run();
        let b2 = run();
        assert_eq!(a.total_cycles, b2.total_cycles);
        assert_eq!(a.offdie_bytes, b2.offdie_bytes);
    }
}

/// Power-grid resampling conserves total power at any resolution.
#[test]
fn power_grid_resample_conserves() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = PowerGrid::zero(4, 3, 8.0, 6.0);
        for k in 0..12 {
            g.add(k % 4, k / 4, rng.gen_range(0.0..10.0));
        }
        let nx = rng.gen_range(1usize..9);
        let ny = rng.gen_range(1usize..9);
        let r = g.resampled(nx, ny);
        assert!((r.total() - g.total()).abs() < 1e-9 * (1.0 + g.total()));
    }
}

/// Thermal maximum principle: with convective boundaries at ambient, no
/// cell is ever colder than ambient or hotter than a lumped bound.
#[test]
fn thermal_solution_is_bounded() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = PowerGrid::zero(3, 3, 9.0, 9.0);
        for k in 0..9 {
            g.add(k % 3, k / 3, rng.gen_range(0.0..30.0));
        }
        let h = rng.gen_range(500.0..50_000.0);
        let total = g.total();
        let mut stack = LayerStack::new(9.0, 9.0);
        stack.push(Layer::passive("lid", 1e-3, 200.0));
        stack.push(Layer::active("die", 0.5e-3, 120.0, g));
        let bc = Boundary {
            h_top: h,
            h_bottom: 10.0,
            ambient: 40.0,
        };
        let cfg = SolverConfig::builder().nx(3).ny(3).build();
        let f = solve(&stack, bc, cfg).unwrap();
        assert!(f.min() >= 40.0 - 1e-6, "below ambient: {}", f.min());
        // lumped upper bound: all power through the weakest single-cell path
        let cell_area = (3e-3f64) * (3e-3);
        let r_worst = 1.0 / (h * cell_area) + 1e-3 / (200.0 * cell_area);
        assert!(
            f.peak() <= 40.0 + total * r_worst + 1e-6,
            "peak {} too hot",
            f.peak()
        );
    }
}
