//! Integration: crash recovery end to end against the real binary — a
//! daemon is SIGKILLed with an accepted request still in flight; on
//! restart the journal replays it (`journal.replayed` > 0), the memo
//! cache makes the replay idempotent, and the recovered artifact is
//! byte-identical to the plain in-process path.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use stacksim::core::harness::json::Json;
use stacksim::core::harness::run_one;
use stacksim::workloads::WorkloadParams;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-crash-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Kills the daemon on drop so a failing assertion can't leak it.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(cache_dir: &PathBuf, fault_plan: Option<&PathBuf>) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_stacksim"));
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--test-scale")
        .arg("--pool")
        .arg("2")
        .arg("--jobs")
        .arg("1")
        .arg("--cache-dir")
        .arg(cache_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(plan) = fault_plan {
        cmd.arg("--fault-plan").arg(plan);
    }
    let mut child = cmd.spawn().expect("spawn stacksim serve");
    // `bind` replays the journal *before* this line prints, so once the
    // address is known, recovery has already happened
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = banner
        .rsplit("http://")
        .next()
        .expect("listen banner has an address")
        .trim()
        .to_string();
    // keep draining stdout so the child never blocks on a full pipe
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    Daemon { child, addr }
}

/// Sends one close-after-response request; returns (status, body).
fn request(addr: &str, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let message = format!(
        "{head}\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

fn counter(addr: &str, name: &str) -> u64 {
    let (code, body) = request(addr, "GET /metrics HTTP/1.1", "");
    assert_eq!(code, 200);
    Json::parse(&body)
        .expect("metrics are JSON")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn a_killed_daemon_recovers_its_accepted_work_from_the_journal() {
    let dir = scratch_dir();
    let cache_dir = dir.join("cache");

    // a dispatch stall keeps the accepted request in flight long enough
    // to SIGKILL the daemon mid-run
    let plan_path = dir.join("stall.json");
    std::fs::write(
        &plan_path,
        "{\"schema\":\"stacksim-faults/1\",\"seed\":9,\"rules\":[\
         {\"site\":\"harness.dispatch\",\"key\":\"fig3\",\"kind\":\"stall\",\"ms\":30000}]}",
    )
    .expect("write fault plan");

    let daemon = spawn_daemon(&cache_dir, Some(&plan_path));
    let (code, body) = request(
        &daemon.addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig3\",\"faults\":true}",
    );
    assert_eq!(code, 200, "{body}");
    assert!(
        counter(&daemon.addr, "journal.appended") >= 1,
        "the accepted request was journaled before the response"
    );

    // SIGKILL: no drain, no done record — the journal is all that's left
    drop(daemon);
    let journal_path = cache_dir.join("journal").join("requests.jsonl");
    assert!(journal_path.exists(), "the journal survived the crash");

    // restart on the same cache dir, without the stall plan: boot replay
    // resubmits the orphaned request and it runs to completion
    let daemon = spawn_daemon(&cache_dir, None);
    assert_eq!(
        counter(&daemon.addr, "journal.replayed"),
        1,
        "exactly the one orphaned request replayed"
    );

    // the replayed work finishes; resubmitting the same request dedups
    // onto it (or serves warm) and yields the artifact
    let (code, body) = request(
        &daemon.addr,
        "POST /v1/experiments HTTP/1.1",
        "{\"experiment\":\"fig3\",\"faults\":true}",
    );
    assert_eq!(code, 200, "{body}");
    let id = Json::parse(&body)
        .expect("JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) = request(
            &daemon.addr,
            &format!("GET /v1/experiments/{id}?wait=1&timeout_ms=5000 HTTP/1.1"),
            "",
        );
        if code == 200 && body.contains("\"status\":\"done\"") {
            assert!(body.contains("\"ok\":true"), "{body}");
            break;
        }
        assert_eq!(code, 202, "bounded long-poll while recovering: {body}");
        assert!(
            Instant::now() < deadline,
            "recovered request never finished"
        );
    }
    let (code, via_recovery) = request(
        &daemon.addr,
        &format!("GET /v1/experiments/{id}/artifact HTTP/1.1"),
        "",
    );
    assert_eq!(code, 200);

    // the recovery path cost nothing extra and changed nothing: the
    // artifact is byte-identical to the plain in-process path
    let direct = run_one("fig3", WorkloadParams::test()).expect("direct fig3");
    assert_eq!(
        via_recovery,
        direct.encode(),
        "recovered artifact must be bit-identical"
    );

    // a clean second restart replays nothing: the journal recorded the
    // request's completion
    drop(daemon);
    let daemon = spawn_daemon(&cache_dir, None);
    assert_eq!(
        counter(&daemon.addr, "journal.replayed"),
        0,
        "completed work does not replay"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
