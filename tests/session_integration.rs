//! Integration: the `Sim` session facade — request deduplication,
//! parameterised variants, warm-cache serving and graceful shutdown —
//! spanning `stacksim-core`'s session, runner and cache layers.

use std::path::PathBuf;

use stacksim::core::prelude::*;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacksim-session-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// N identical in-flight requests coalesce onto one slot: same id, one
/// execution, one artifact — the solver ran exactly once.
#[test]
fn identical_inflight_requests_run_exactly_once() {
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .start_paused(true)
        .build();
    let request = ExperimentRequest::new("fig5:gauss");
    let handles: Vec<_> = (0..5).map(|_| sim.submit(&request).unwrap()).collect();

    // all five share the first submission's slot
    for h in &handles {
        assert_eq!(h.id(), handles[0].id());
        assert_eq!(h.digest(), handles[0].digest());
        assert_eq!(h.status(), RequestStatus::Queued);
    }
    let stats = sim.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.dedup_hits, 4, "four submissions deduplicated");
    assert_eq!(stats.inflight, 1, "one slot of real work");

    sim.resume();
    let outcomes: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    for o in &outcomes {
        assert!(o.is_ok(), "{:?}", o.report.error);
        // every handle sees the *same* outcome object, not a re-run
        assert!(std::sync::Arc::ptr_eq(o, &outcomes[0]));
    }
    assert_eq!(outcomes[0].report.attempts, 1, "one clean execution");
    // exactly one batch ran, containing exactly one experiment
    let batches = sim.drain_outcomes();
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].report.entries.len(), 1);
    assert_eq!(sim.stats().completed, 1);
}

/// Parameterised variants are first-class: an override folds into the
/// digest, so variants neither deduplicate nor share cache entries.
#[test]
fn parameter_overrides_split_the_digest() {
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .start_paused(true)
        .build();
    let base = sim.submit(&ExperimentRequest::new("fig5:gauss")).unwrap();
    let variant = sim
        .submit(&ExperimentRequest::new("fig5:gauss").seed(0xdead_beef))
        .unwrap();
    assert_ne!(base.id(), variant.id(), "a variant is not a duplicate");
    assert_ne!(
        base.digest(),
        variant.digest(),
        "seed is part of the digest"
    );
    assert_eq!(sim.stats().dedup_hits, 0);

    // resubmitting the same variant *does* deduplicate
    let again = sim
        .submit(&ExperimentRequest::new("fig5:gauss").seed(0xdead_beef))
        .unwrap();
    assert_eq!(again.id(), variant.id());
    assert_eq!(sim.stats().dedup_hits, 1);

    sim.resume();
    let (b, v) = (base.wait(), variant.wait());
    assert!(b.is_ok() && v.is_ok());
    // distinct digests mean distinct executions: neither came from the
    // other's work (no cache is configured here)
    assert!(!b.report.cached && !v.report.cached);
    assert_eq!(b.report.attempts, 1);
    assert_eq!(v.report.attempts, 1);
    // two parameter groups → two runner batches
    assert_eq!(sim.drain_outcomes().len(), 2);
}

/// A second submission after the first completed is *not* a dedup hit —
/// it is served from the session's warm cache with zero solver work.
#[test]
fn completed_request_resubmission_hits_the_cache() {
    let dir = scratch_dir("warm");
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .cache(MemoCache::builder().dir(&dir).shards(4).build())
        .build();
    let first = sim.submit(&ExperimentRequest::new("fig8")).unwrap().wait();
    assert!(first.is_ok(), "{:?}", first.report.error);
    assert!(!first.report.cached, "cold cache actually runs");
    assert!(first.report.telemetry.solver.iterations > 0);

    let second = sim.submit(&ExperimentRequest::new("fig8")).unwrap().wait();
    assert!(second.report.cached, "the warm cache serves the re-run");
    assert_eq!(
        second.report.telemetry.solver.iterations, 0,
        "a cache hit does zero CG iterations"
    );
    assert_eq!(first.report.digest, second.report.digest);
    // bit-identical artifact through the cache round-trip
    assert_eq!(
        first.artifact.as_ref().unwrap().encode(),
        second.artifact.as_ref().unwrap().encode()
    );
    assert_eq!(sim.stats().dedup_hits, 0, "not a dedup: the first finished");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The embedded `Sim` path produces byte-for-byte the artifact the
/// plain `run_one` path produces — the embed-or-serve split does not
/// perturb results.
#[test]
fn sim_artifact_matches_run_one_bit_for_bit() {
    let params = WorkloadParams::test();
    let direct = run_one("fig5:conj", params).unwrap();

    let sim = Sim::builder().params(params).build();
    let outcome = sim
        .submit(&ExperimentRequest::new("fig5:conj"))
        .unwrap()
        .wait();
    let via_sim = outcome.artifact.as_ref().unwrap();
    assert_eq!(direct.encode(), via_sim.encode());
}

/// Shutdown drains: requests submitted before (even to a paused session)
/// still complete, and later submissions are refused.
#[test]
fn shutdown_drains_submitted_work() {
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .start_paused(true)
        .build();
    let handle = sim.submit(&ExperimentRequest::new("fig5:gauss")).unwrap();
    assert_eq!(handle.status(), RequestStatus::Queued);
    // never resumed: shutdown itself must release and finish the queue
    sim.shutdown();
    let outcome = handle.try_outcome().expect("drained on shutdown");
    assert!(outcome.is_ok(), "{:?}", outcome.report.error);
    assert!(sim.submit(&ExperimentRequest::new("fig3")).is_err());
}

/// Structural failures surface per-request: an unknown experiment is
/// refused at submit time with a typed error.
#[test]
fn unknown_experiment_is_refused_at_submit() {
    let sim = Sim::builder().params(WorkloadParams::test()).build();
    let err = sim.submit(&ExperimentRequest::new("fig99")).unwrap_err();
    assert_eq!(err.kind(), "unknown-experiment");
    // invalid overrides are refused too
    let err = sim
        .submit(&ExperimentRequest::new("fig3").threads(0))
        .unwrap_err();
    assert!(err.to_string().contains("thread count"), "{err}");
}

/// Admission control: past `max_pending` queued+running requests, new
/// distinct submissions are shed with a typed `overloaded` error — but
/// duplicates of in-flight work still coalesce (a dedup costs nothing),
/// and completions release slots for shed callers to retry into.
#[test]
fn admission_bound_sheds_and_releases() {
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .start_paused(true)
        .max_pending(2)
        .build();
    let first = sim.submit(&ExperimentRequest::new("fig5:gauss")).unwrap();
    let _second = sim.submit(&ExperimentRequest::new("fig5:pcg")).unwrap();
    // at the bound: a distinct third submission is shed...
    let err = sim
        .submit(&ExperimentRequest::new("fig5:conj"))
        .unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert!(err.to_string().contains("limit of 2"), "{err}");
    // ...but a duplicate of in-flight work is still admitted
    let dup = sim.submit(&ExperimentRequest::new("fig5:gauss")).unwrap();
    assert_eq!(dup.id(), first.id());

    // completion releases slots: the shed request is admitted on retry
    sim.resume();
    sim.wait_idle();
    let retried = sim.submit(&ExperimentRequest::new("fig5:conj")).unwrap();
    assert!(retried.wait().is_ok());
}

/// A request's `deadline_ms` tightens the resilience policy for its own
/// batch: recovery stops at the request's deadline instead of spending
/// the retry budget, and the deadline is part of the dedup key.
#[test]
fn request_deadline_bounds_recovery() {
    use stacksim::faults::{Fault, FaultPlan, FaultRule};
    let plan = FaultPlan {
        seed: 7,
        rules: vec![FaultRule::always(
            "harness.dispatch",
            "fig5:gauss",
            Fault::IoTransient,
        )],
    };
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .fault_plan(plan)
        .resilience(Resilience {
            backoff_ms: 1,
            ..Resilience::default()
        })
        .start_paused(true)
        .build();
    let doomed = sim
        .submit(
            &ExperimentRequest::new("fig5:gauss")
                .faults(true)
                .deadline_ms(1),
        )
        .unwrap();
    let relaxed = sim
        .submit(
            &ExperimentRequest::new("fig5:gauss")
                .faults(true)
                .deadline_ms(60_000),
        )
        .unwrap();
    assert_ne!(doomed.id(), relaxed.id(), "deadline splits the dedup key");

    sim.resume();
    let d = doomed.wait();
    assert!(!d.is_ok());
    // the 1 ms deadline trips as soon as a failed attempt lands past it
    assert_eq!(d.report.error_kind.as_deref(), Some("deadline"));
    assert!(
        d.report.attempts <= 2,
        "the deadline pre-empts the full retry budget (attempts={})",
        d.report.attempts
    );
    // a roomy deadline never fires: the always-on fault exhausts the
    // retry budget instead and surfaces as the transient error it is
    let r = relaxed.wait();
    assert!(!r.is_ok());
    assert_eq!(r.report.error_kind.as_deref(), Some("io"));
    assert!(r.report.attempts > 1, "the retry budget was spent");
}

/// `wait_timeout` is a bounded wait: `None` while the work cannot
/// finish, the outcome once it does — the serve long-poll building
/// block.
#[test]
fn wait_timeout_is_bounded() {
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .start_paused(true)
        .build();
    let handle = sim.submit(&ExperimentRequest::new("fig5:gauss")).unwrap();
    assert!(
        handle
            .wait_timeout(std::time::Duration::from_millis(30))
            .is_none(),
        "paused work cannot finish inside the timeout"
    );
    sim.resume();
    let outcome = handle
        .wait_timeout(std::time::Duration::from_secs(60))
        .expect("resumed work finishes");
    assert!(outcome.is_ok(), "{:?}", outcome.report.error);
}

/// A fault-injected panic inside the runner's dispatch neither wedges
/// the scheduler nor leaks into clean work: every queued handle
/// resolves, the doomed request reports `worker-panic` after its full
/// retry budget, the clean twin of the same experiment succeeds, and
/// the session keeps serving afterwards.
#[test]
fn injected_dispatch_panic_resolves_every_handle() {
    use stacksim::faults::{Fault, FaultPlan, FaultRule};
    let plan = FaultPlan {
        seed: 11,
        rules: vec![FaultRule::always(
            "harness.dispatch",
            "fig5:sMVM",
            Fault::Panic,
        )],
    };
    let sim = Sim::builder()
        .params(WorkloadParams::test())
        .fault_plan(plan)
        .resilience(Resilience {
            backoff_ms: 1,
            ..Resilience::default()
        })
        .start_paused(true)
        .build();
    let doomed = sim
        .submit(&ExperimentRequest::new("fig5:sMVM").faults(true))
        .unwrap();
    let clean = sim.submit(&ExperimentRequest::new("fig5:sMVM")).unwrap();
    assert_ne!(
        doomed.id(),
        clean.id(),
        "fault opt-in never dedups against clean"
    );
    let other = sim.submit(&ExperimentRequest::new("fig5:pcg")).unwrap();

    sim.resume();
    let d = doomed.wait();
    let c = clean.wait();
    let o = other.wait();
    assert!(!d.is_ok(), "the injected panic fails the request");
    assert_eq!(d.report.error_kind.as_deref(), Some("worker-panic"));
    assert!(d.report.attempts > 1, "the retry budget was spent");
    assert!(c.is_ok(), "clean twin unaffected: {:?}", c.report.error);
    assert!(
        o.is_ok(),
        "unrelated request unaffected: {:?}",
        o.report.error
    );

    // the scheduler thread survived the panicking batch: the session
    // still accepts and completes new work
    let after = sim
        .submit(&ExperimentRequest::new("fig5:pcg"))
        .unwrap()
        .wait();
    assert!(after.is_ok(), "{:?}", after.report.error);
    // `wait()` resolves on slot completion; the scheduler's batch
    // bookkeeping (the `running` gauge) settles at idle
    sim.wait_idle();
    assert_eq!(sim.stats().inflight, 0, "nothing left queued or running");
}
