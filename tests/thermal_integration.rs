//! Integration: floorplans → power grids → thermal solver, spanning
//! `stacksim-floorplan`, `stacksim-thermal` and `stacksim-core`.

use stacksim::core::memory_logic::{fig6, fig8, thermal_stack};
use stacksim::core::StackOption;
use stacksim::floorplan::core2::core2_duo_92w;
use stacksim::floorplan::p4::pentium4_147w;
use stacksim::floorplan::{fold, worst_case_stack, FoldOptions};
use stacksim::thermal::{solve, Boundary, LayerStack, SolverConfig};

fn quick_cfg() -> SolverConfig {
    SolverConfig::builder().nx(20).ny(17).build()
}

#[test]
fn fig8_reproduces_the_papers_ordering_and_magnitudes() {
    let points = fig8().unwrap();
    let peaks: Vec<f64> = points.iter().map(|p| p.peak_c).collect();
    // paper: 88.35 / 92.85 / 88.43 / 90.27
    assert!((peaks[0] - 88.35).abs() < 1.2, "baseline {:.2}", peaks[0]);
    assert!((peaks[1] - 92.85).abs() < 1.2, "12MB {:.2}", peaks[1]);
    assert!((peaks[2] - 88.43).abs() < 1.2, "32MB {:.2}", peaks[2]);
    assert!((peaks[3] - 90.27).abs() < 1.2, "64MB {:.2}", peaks[3]);
    // ordering: SRAM hottest, DRAM-32 nearly free
    assert!(peaks[1] > peaks[3] && peaks[3] > peaks[2]);
}

#[test]
fn fig6_hotspots_sit_over_the_cores_not_the_cache() {
    let (_, field) = fig6().unwrap();
    let active = field
        .layer_names()
        .iter()
        .position(|n| n == "active 1")
        .expect("active layer");
    let map = field.layer(active);
    let (nx, ny) = field.dims();
    // cores occupy the top half (y > 1/2); the L2 the bottom half
    let top_max = (ny / 2..ny)
        .flat_map(|j| (0..nx).map(move |i| (i, j)))
        .map(|(i, j)| map[j * nx + i])
        .fold(f64::NEG_INFINITY, f64::max);
    let bottom_max = (0..ny / 2)
        .flat_map(|j| (0..nx).map(move |i| (i, j)))
        .map(|(i, j)| map[j * nx + i])
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        top_max > bottom_max + 5.0,
        "cores ({top_max:.1}) must be much hotter than the L2 ({bottom_max:.1})"
    );
}

#[test]
fn thermal_stacks_carry_the_right_power() {
    for option in StackOption::all() {
        let stack = thermal_stack(option, 20);
        assert!(
            (stack.total_power() - option.total_power()).abs() < 1e-6,
            "{option}: {} vs {}",
            stack.total_power(),
            option.total_power()
        );
    }
}

#[test]
fn stacking_a_hot_die_is_worse_than_a_cool_die() {
    let cpu = core2_duo_92w();
    let cfg = quick_cfg();
    let grid = cpu.power_grid(cfg.nx, cfg.ny);
    let run = |top_w: f64| {
        let top = stacksim::floorplan::uniform_die("top", cpu.width(), cpu.height(), top_w);
        let stack = LayerStack::two_die(
            cpu.width(),
            cpu.height(),
            grid.clone(),
            top.power_grid(cfg.nx, cfg.ny),
            false,
        );
        solve(&stack, Boundary::desktop(), cfg).unwrap().peak()
    };
    let cool = run(3.0);
    let hot = run(20.0);
    assert!(hot > cool + 1.0, "hot {hot:.2} vs cool {cool:.2}");
}

#[test]
fn folded_p4_stays_well_below_the_worst_case() {
    let planar = pentium4_147w();
    let folded = fold(&planar, FoldOptions::default()).unwrap();
    let wc = worst_case_stack(&planar);
    let cfg = quick_cfg();
    let solve_stack = |s: &stacksim::floorplan::StackedFloorplan| {
        let d0 = &s.dies()[0];
        let d1 = &s.dies()[1];
        let bc = Boundary::performance().scaled_to_area(planar.area(), d0.area());
        let stack = LayerStack::two_die(
            d0.width(),
            d0.height(),
            d0.power_grid(cfg.nx, cfg.ny),
            d1.power_grid(cfg.nx, cfg.ny),
            false,
        );
        solve(&stack, bc, cfg).unwrap().peak()
    };
    let repaired = solve_stack(&folded);
    let worst = solve_stack(&wc);
    assert!(
        repaired + 10.0 < worst,
        "hotspot repair must buy >10 C: {repaired:.1} vs {worst:.1}"
    );
}

#[test]
fn solver_grid_refinement_converges() {
    // peak temperature at 20x17 and 40x34 must agree within a degree —
    // the discretisation is fine enough for the study's conclusions
    let cpu = core2_duo_92w();
    let run = |nx: usize, ny: usize| {
        let cfg = SolverConfig::builder().nx(nx).ny(ny).build();
        let stack = LayerStack::planar(cpu.width(), cpu.height(), cpu.power_grid(nx, ny));
        solve(&stack, Boundary::desktop(), cfg).unwrap().peak()
    };
    let coarse = run(20, 17);
    let fine = run(40, 34);
    assert!(
        (coarse - fine).abs() < 1.5,
        "coarse {coarse:.2} vs fine {fine:.2}"
    );
}
